// Unit tests for the MIP model container.

#include <gtest/gtest.h>

#include "ilp/model.h"

namespace rdfsr::ilp {
namespace {

TEST(ModelTest, AddVariablesAndConstraints) {
  Model m;
  const int x = m.AddVariable("x", 0, 10, false);
  const int y = m.AddBinary("y");
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 1);
  EXPECT_EQ(m.num_variables(), 2u);
  EXPECT_TRUE(m.variable(y).is_integer);
  EXPECT_DOUBLE_EQ(m.variable(y).upper, 1.0);

  m.AddConstraint("c0", {{x, 1.0}, {y, 2.0}}, 0, 5);
  EXPECT_EQ(m.num_constraints(), 1u);
}

TEST(ModelTest, MergesDuplicateTerms) {
  Model m;
  const int x = m.AddVariable("x", 0, 1, false);
  const int r = m.AddConstraint("c", {{x, 1.0}, {x, 2.0}}, 0, 1);
  ASSERT_EQ(m.constraint(r).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.constraint(r).terms[0].coef, 3.0);
}

TEST(ModelTest, DropsZeroCoefficients) {
  Model m;
  const int x = m.AddVariable("x", 0, 1, false);
  const int y = m.AddVariable("y", 0, 1, false);
  const int r = m.AddConstraint("c", {{x, 1.0}, {y, 1.0}, {y, -1.0}}, 0, 1);
  ASSERT_EQ(m.constraint(r).terms.size(), 1u);
  EXPECT_EQ(m.constraint(r).terms[0].var, x);
}

TEST(ModelTest, ObjectiveValue) {
  Model m;
  const int x = m.AddVariable("x", 0, 5, false);
  const int y = m.AddVariable("y", 0, 5, false);
  m.SetObjective({{x, 2.0}, {y, -1.0}});
  EXPECT_DOUBLE_EQ(m.ObjectiveValue({3.0, 1.0}), 5.0);
}

TEST(ModelTest, IsFeasibleChecksEverything) {
  Model m;
  const int x = m.AddVariable("x", 0, 2, true);
  const int y = m.AddVariable("y", 0, 1, false);
  m.AddConstraint("c", {{x, 1.0}, {y, 1.0}}, 1, 2);

  EXPECT_TRUE(m.IsFeasible({1.0, 0.5}));
  EXPECT_FALSE(m.IsFeasible({1.5, 0.0}));  // integrality
  EXPECT_FALSE(m.IsFeasible({3.0, 0.0}));  // bound
  EXPECT_FALSE(m.IsFeasible({0.0, 0.5}));  // constraint lower
  EXPECT_FALSE(m.IsFeasible({2.0, 1.0}));  // constraint upper
  EXPECT_FALSE(m.IsFeasible({1.0}));       // arity
}

TEST(ModelTest, SetConstraintTermsReplacesRowInPlace) {
  Model m;
  const int x = m.AddVariable("x", 0, 1, false);
  const int y = m.AddVariable("y", 0, 1, false);
  const int r = m.AddConstraint("row", {{x, 1.0}}, 0, 1);

  m.SetConstraintTerms(r, {{y, 2.0}, {y, 1.0}, {x, 0.0}}, -1, 3);
  EXPECT_EQ(m.num_constraints(), 1u);
  EXPECT_EQ(m.constraint(r).name, "row");  // name kept
  ASSERT_EQ(m.constraint(r).terms.size(), 1u);  // merged, zero dropped
  EXPECT_EQ(m.constraint(r).terms[0].var, y);
  EXPECT_DOUBLE_EQ(m.constraint(r).terms[0].coef, 3.0);
  EXPECT_DOUBLE_EQ(m.constraint(r).lower, -1.0);
  EXPECT_DOUBLE_EQ(m.constraint(r).upper, 3.0);

  // Rewriting to an empty row is allowed (a threshold row with no active
  // taus); feasibility then depends only on the bounds including zero.
  m.SetConstraintTerms(r, {}, 0, kInfinity);
  EXPECT_TRUE(m.constraint(r).terms.empty());
  EXPECT_TRUE(m.IsFeasible({0.0, 0.0}));
}

TEST(ModelTest, SetConstraintBoundsTogglesRowActivity) {
  Model m;
  const int x = m.AddVariable("x", 0, 1, false);
  const int r = m.AddConstraint("link", {{x, 1.0}}, -kInfinity, 0);
  EXPECT_FALSE(m.IsFeasible({1.0}));

  // Deactivate: both sides infinite makes the row vacuous.
  m.SetConstraintBounds(r, -kInfinity, kInfinity);
  EXPECT_TRUE(m.IsFeasible({1.0}));

  // Reactivate with the opposite sense.
  m.SetConstraintBounds(r, 1, kInfinity);
  EXPECT_TRUE(m.IsFeasible({1.0}));
  EXPECT_FALSE(m.IsFeasible({0.0}));
}

TEST(ModelTest, ToStringMentionsNamesAndBounds) {
  Model m;
  const int x = m.AddVariable("price", 0, 1, false);
  m.AddConstraint("limit", {{x, 2.0}}, -kInfinity, 1);
  const std::string s = m.ToString();
  EXPECT_NE(s.find("price"), std::string::npos);
  EXPECT_NE(s.find("limit"), std::string::npos);
}

}  // namespace
}  // namespace rdfsr::ilp
