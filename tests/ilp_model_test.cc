// Unit tests for the MIP model container.

#include <gtest/gtest.h>

#include "ilp/model.h"

namespace rdfsr::ilp {
namespace {

TEST(ModelTest, AddVariablesAndConstraints) {
  Model m;
  const int x = m.AddVariable("x", 0, 10, false);
  const int y = m.AddBinary("y");
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 1);
  EXPECT_EQ(m.num_variables(), 2u);
  EXPECT_TRUE(m.variable(y).is_integer);
  EXPECT_DOUBLE_EQ(m.variable(y).upper, 1.0);

  m.AddConstraint("c0", {{x, 1.0}, {y, 2.0}}, 0, 5);
  EXPECT_EQ(m.num_constraints(), 1u);
}

TEST(ModelTest, MergesDuplicateTerms) {
  Model m;
  const int x = m.AddVariable("x", 0, 1, false);
  const int r = m.AddConstraint("c", {{x, 1.0}, {x, 2.0}}, 0, 1);
  ASSERT_EQ(m.constraint(r).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.constraint(r).terms[0].coef, 3.0);
}

TEST(ModelTest, DropsZeroCoefficients) {
  Model m;
  const int x = m.AddVariable("x", 0, 1, false);
  const int y = m.AddVariable("y", 0, 1, false);
  const int r = m.AddConstraint("c", {{x, 1.0}, {y, 1.0}, {y, -1.0}}, 0, 1);
  ASSERT_EQ(m.constraint(r).terms.size(), 1u);
  EXPECT_EQ(m.constraint(r).terms[0].var, x);
}

TEST(ModelTest, ObjectiveValue) {
  Model m;
  const int x = m.AddVariable("x", 0, 5, false);
  const int y = m.AddVariable("y", 0, 5, false);
  m.SetObjective({{x, 2.0}, {y, -1.0}});
  EXPECT_DOUBLE_EQ(m.ObjectiveValue({3.0, 1.0}), 5.0);
}

TEST(ModelTest, IsFeasibleChecksEverything) {
  Model m;
  const int x = m.AddVariable("x", 0, 2, true);
  const int y = m.AddVariable("y", 0, 1, false);
  m.AddConstraint("c", {{x, 1.0}, {y, 1.0}}, 1, 2);

  EXPECT_TRUE(m.IsFeasible({1.0, 0.5}));
  EXPECT_FALSE(m.IsFeasible({1.5, 0.0}));  // integrality
  EXPECT_FALSE(m.IsFeasible({3.0, 0.0}));  // bound
  EXPECT_FALSE(m.IsFeasible({0.0, 0.5}));  // constraint lower
  EXPECT_FALSE(m.IsFeasible({2.0, 1.0}));  // constraint upper
  EXPECT_FALSE(m.IsFeasible({1.0}));       // arity
}

TEST(ModelTest, ToStringMentionsNamesAndBounds) {
  Model m;
  const int x = m.AddVariable("price", 0, 1, false);
  m.AddConstraint("limit", {{x, 2.0}}, -kInfinity, 1);
  const std::string s = m.ToString();
  EXPECT_NE(s.find("price"), std::string::npos);
  EXPECT_NE(s.find("limit"), std::string::npos);
}

}  // namespace
}  // namespace rdfsr::ilp
