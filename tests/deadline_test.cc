// Deadline / cancellation tests: token semantics, anytime behaviour of the
// searches (best incumbent + non-decided marker), and the determinism of
// cancelled parallel stages — a cancelled run at any thread count must leave
// valid, auditable state behind. Runs under `ctest -L threads` and the TSan
// CI job.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/rdfsr.h"
#include "core/greedy.h"
#include "core/refinement.h"
#include "core/solver.h"
#include "eval/evaluator.h"
#include "gen/random_graph.h"
#include "ilp/branch_and_bound.h"
#include "ilp/model.h"
#include "rdf/ntriples.h"
#include "rules/builtins.h"
#include "schema/index_builder.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace rdfsr {
namespace {

// --- token semantics ---------------------------------------------------------

TEST(DeadlineTest, DefaultTokenNeverTrips) {
  util::CancellationToken token;
  EXPECT_FALSE(token.can_trip());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.expired());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_TRUE(token.status().ok());
}

TEST(DeadlineTest, ExpiredDeadlineReportsDeadlineExceeded) {
  const util::Deadline deadline = util::Deadline::After(-1.0);
  const util::CancellationToken token = deadline.token();
  EXPECT_TRUE(token.can_trip());
  EXPECT_TRUE(token.expired());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, CancelReportsCancelled) {
  const util::Deadline deadline = util::Deadline::Cancellable();
  const util::CancellationToken token = deadline.token();
  EXPECT_TRUE(token.can_trip());
  EXPECT_FALSE(token.stop_requested());
  deadline.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_FALSE(token.expired());
  EXPECT_EQ(token.status().code(), StatusCode::kCancelled);
}

TEST(DeadlineTest, CancellationWinsOverExpiry) {
  const util::Deadline deadline = util::Deadline::After(-1.0);
  deadline.RequestCancel();
  EXPECT_EQ(deadline.token().status().code(), StatusCode::kCancelled);
}

TEST(DeadlineTest, AfterMillisZeroMeansNoDeadline) {
  EXPECT_FALSE(util::Deadline::AfterMillis(0).can_trip());
  EXPECT_FALSE(util::Deadline::AfterMillis(-5).can_trip());
  EXPECT_TRUE(util::Deadline::AfterMillis(1).can_trip());
}

TEST(DeadlineTest, TokensShareTheCancelFlag) {
  const util::Deadline deadline = util::Deadline::Cancellable();
  const util::CancellationToken a = deadline.token();
  const util::CancellationToken b = deadline.token();
  deadline.RequestCancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
}

TEST(DeadlineTest, PeriodicCheckSamplesAtStride) {
  const util::Deadline deadline = util::Deadline::Cancellable();
  deadline.RequestCancel();
  util::PeriodicCheck check(deadline.token(), 8);
  int stops = 0;
  for (int i = 0; i < 16; ++i) {
    if (check.ShouldStop()) ++stops;
  }
  EXPECT_EQ(stops, 2);  // calls 8 and 16 sample the (tripped) token

  // Unarmed checks never stop, whatever the stride.
  util::PeriodicCheck unarmed(util::CancellationToken{}, 1);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(unarmed.ShouldStop());
}

// --- cancelled stages leave valid state, at every thread count ---------------

/// Random index big enough that the agglomerative heuristics do real merging.
schema::SignatureIndex MakeMessyIndex(std::uint64_t seed) {
  gen::RandomGraphSpec spec;
  spec.num_subjects = 150;
  spec.num_properties = 12;
  spec.num_sorts = 3;
  spec.seed = seed;
  const rdf::Graph graph = gen::GenerateRandomGraph(spec);
  return schema::IndexBuilder::FromGraph(graph);
}

TEST(DeadlineTest, CancelledAgglomerativeStaysValidAcrossThreadCounts) {
  const schema::SignatureIndex index = MakeMessyIndex(11);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    const util::Deadline deadline = util::Deadline::Cancellable();
    deadline.RequestCancel();  // tripped before the first merge round
    const core::SortRefinement cut = core::AgglomerativeLowestK(
        *cov, Rational(9, 10), threads, deadline.token());
    // Valid partition, just coarser than the uncancelled run would produce.
    EXPECT_TRUE(core::ValidatePartition(index, cut).ok());

    const core::SortRefinement fixed =
        core::AgglomerativeFixedK(*cov, 2, threads, deadline.token());
    EXPECT_TRUE(core::ValidatePartition(index, fixed).ok());
  }
}

TEST(DeadlineTest, CancelledGreedyStaysValid) {
  const schema::SignatureIndex index = MakeMessyIndex(23);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  core::GreedyOptions options;
  const util::Deadline deadline = util::Deadline::Cancellable();
  deadline.RequestCancel();
  options.cancel = deadline.token();
  const core::SortRefinement cut = core::GreedyMaxMinSigma(*cov, 3, options);
  EXPECT_TRUE(core::ValidatePartition(index, cut).ok());
}

TEST(DeadlineTest, CancelledShardedParseLeavesValidGraph) {
  std::string text;
  for (int i = 0; i < 12000; ++i) {
    text += "<http://x/s" + std::to_string(i % 57) + "> <http://x/p" +
            std::to_string(i % 7) + "> \"v" + std::to_string(i) + "\" .\n";
  }
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    const util::Deadline deadline = util::Deadline::Cancellable();
    deadline.RequestCancel();
    rdf::ParseOptions options;
    options.threads = threads;
    options.min_chunk_bytes = 1;
    options.cancel = deadline.token();
    rdf::Graph graph;
    const Status st = rdf::ParseNTriplesInto(text, &graph, options);
    EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
    // Sequential keeps a prefix, sharded may leave the graph empty; both
    // must be coherent (aborts on corruption).
    graph.CheckInvariants();
  }
}

TEST(DeadlineTest, CancelledMergeLeavesDestinationEmpty) {
  // MergeShards refuses to mutate the destination once the token tripped.
  const std::string text =
      "<http://x/a> <http://x/p> \"1\" .\n"
      "<http://x/b> <http://x/p> \"2\" .\n";
  std::vector<rdf::Graph> shards(2);
  ASSERT_TRUE(rdf::ParseNTriplesInto(text, &shards[0]).ok());
  ASSERT_TRUE(rdf::ParseNTriplesInto(text, &shards[1]).ok());
  const util::Deadline deadline = util::Deadline::Cancellable();
  deadline.RequestCancel();
  util::ThreadPool pool(2);
  rdf::Graph merged;
  const Status st =
      merged.MergeShards(&shards, shards.size(), &pool, deadline.token());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(merged.size(), 0u);
  merged.CheckInvariants();
}

// --- solver anytime semantics ------------------------------------------------

TEST(DeadlineTest, CancelledMipReportsStopReason) {
  // A 0-1 knapsack-ish model the solver would normally decide instantly; a
  // pre-tripped token must unwind at the first node with the reason recorded.
  ilp::Model model;
  const int x = model.AddBinary("x");
  const int y = model.AddBinary("y");
  model.AddConstraint("sum", {{x, 1.0}, {y, 1.0}}, 1.0, 2.0);
  const util::Deadline deadline = util::Deadline::Cancellable();
  deadline.RequestCancel();
  ilp::MipOptions options;
  options.cancel = deadline.token();
  const ilp::MipResult result = ilp::SolveMip(model, options);
  EXPECT_EQ(result.status, ilp::MipStatus::kUnknown);
  EXPECT_EQ(result.stop_reason, ilp::MipStopReason::kCancelled);
}

TEST(DeadlineTest, ExistsReturnsUnknownWithLimitOnTrippedToken) {
  const schema::SignatureIndex index = MakeMessyIndex(5);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  core::SolverOptions options;
  options.deadline = util::Deadline::After(-1.0);  // already expired
  core::RefinementSolver solver(cov.get(), options);
  const core::DecisionResult r = solver.Exists(3, Rational(99, 100));
  EXPECT_EQ(r.decision, core::Decision::kUnknown);
  EXPECT_EQ(r.limit.code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, HighestThetaCutMidGridKeepsBestIncumbent) {
  // Acceptance lock: a HighestTheta run cut by an expired deadline still
  // returns the best incumbent found (at worst the sigma_all baseline one-
  // sort partition) and flags the cut — timed_out set, ceiling not proven.
  const schema::SignatureIndex index = MakeMessyIndex(7);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  core::SolverOptions options;
  // This test is about deadline semantics, not exact solving: gate the MIP at
  // the messy index's size so the re-armed full run below stays heuristic
  // (otherwise its endgame instance churns to the MIP time limit).
  options.max_mip_rows = 4000;
  options.deadline = util::Deadline::After(-1.0);
  core::RefinementSolver solver(cov.get(), options);
  const core::HighestThetaResult cut = solver.FindHighestTheta(2);
  EXPECT_TRUE(cut.timed_out);
  EXPECT_FALSE(cut.ceiling_proven);
  EXPECT_TRUE(core::ValidatePartition(index, cut.refinement).ok());
  // The incumbent's guarantee still holds exactly: every sort >= theta.
  EXPECT_TRUE(
      core::ValidateRefinement(*cov, cut.refinement, cut.theta).ok());

  // Re-arming the deadline on the same solver (the api::Analysis pattern)
  // lets the identical query run to completion.
  solver.set_deadline(util::Deadline());
  const core::HighestThetaResult full = solver.FindHighestTheta(2);
  EXPECT_FALSE(full.timed_out);
  EXPECT_GE(full.theta, cut.theta);
}

TEST(DeadlineTest, BisectionCutKeepsBestIncumbent) {
  const schema::SignatureIndex index = MakeMessyIndex(7);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  core::SolverOptions options;
  options.binary_theta_search = true;
  options.deadline = util::Deadline::After(-1.0);
  core::RefinementSolver solver(cov.get(), options);
  const core::HighestThetaResult cut = solver.FindHighestTheta(2);
  EXPECT_TRUE(cut.timed_out);
  EXPECT_FALSE(cut.ceiling_proven);
  EXPECT_TRUE(core::ValidatePartition(index, cut.refinement).ok());
}

TEST(DeadlineTest, LowestKFailsWithDeadlineExceeded) {
  const schema::SignatureIndex index = MakeMessyIndex(13);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  core::SolverOptions options;
  options.deadline = util::Deadline::After(-1.0);
  core::RefinementSolver solver(cov.get(), options);
  const auto result = solver.FindLowestK(Rational(1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, TrippedHeuristicsDoNotPoisonTheCaches) {
  // A solver whose first query ran under an expired deadline must not serve
  // the truncated heuristic results to a later, un-deadlined query: the
  // second run decides and matches a fresh solver bit for bit.
  const schema::SignatureIndex index = MakeMessyIndex(29);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  core::SolverOptions options;
  // Deadline-semantics test: gate the MIP at this index's size so the
  // un-deadlined sweeps stay in the heuristic regime (the exact endgame
  // would otherwise churn to the MIP time limit on every sweep).
  options.max_mip_rows = 4000;
  options.deadline = util::Deadline::After(-1.0);
  core::RefinementSolver reused(cov.get(), options);
  (void)reused.FindHighestTheta(2);  // cut immediately; may cache nothing
  reused.set_deadline(util::Deadline());
  const core::HighestThetaResult warm = reused.FindHighestTheta(2);

  core::SolverOptions fresh_options;
  fresh_options.max_mip_rows = 4000;
  core::RefinementSolver fresh(cov.get(), fresh_options);
  const core::HighestThetaResult cold = fresh.FindHighestTheta(2);
  EXPECT_FALSE(warm.timed_out);
  EXPECT_EQ(warm.theta, cold.theta);
  EXPECT_EQ(warm.refinement.sorts, cold.refinement.sorts);
}

// --- api surface -------------------------------------------------------------

TEST(DeadlineTest, AnalysisTimeoutSurfacesTimedOutRefinement) {
  gen::RandomGraphSpec spec;
  spec.num_subjects = 120;
  spec.num_properties = 10;
  spec.num_sorts = 2;
  spec.seed = 3;
  const std::string text = rdf::WriteNTriples(gen::GenerateRandomGraph(spec));
  auto dataset = api::Dataset::FromNTriplesText(text);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  auto analysis = dataset->Analyze("cov");
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  // Timeout-semantics test: gate the MIP at this graph's encoding size so the
  // cleared-budget runs below stay in the heuristic regime instead of
  // churning on the exact endgame instance.
  core::SolverOptions gated;
  gated.max_mip_rows = 4000;
  analysis->With(std::move(gated));

  // An effectively-zero budget: the search is cut through the anytime path
  // but still yields the baseline incumbent.
  analysis->Timeout(1e-9);
  auto cut = analysis->HighestTheta(2);
  ASSERT_TRUE(cut.ok()) << cut.status().ToString();
  EXPECT_TRUE(cut->timed_out);
  EXPECT_FALSE(cut->optimal);
  EXPECT_GE(cut->num_sorts(), 1u);

  // Clearing the budget reuses the same solver (caches intact) and decides.
  analysis->Timeout(0.0);
  auto full = analysis->HighestTheta(2);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->timed_out);
  EXPECT_GE(full->theta, cut->theta);

  // LowestK under the zero budget fails loudly instead of fabricating a k.
  analysis->Timeout(1e-9);
  auto lowest = analysis->LowestK(1.0);
  ASSERT_FALSE(lowest.ok());
  EXPECT_EQ(lowest.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace rdfsr
