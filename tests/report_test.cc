// Tests for the schema-report module (core/report.h).

#include <gtest/gtest.h>

#include "core/report.h"
#include "gen/persons.h"
#include "schema/signature_index.h"

namespace rdfsr::core {
namespace {

schema::SignatureIndex AliveDeadIndex() {
  // "Alive" signatures lack the death properties entirely.
  std::vector<schema::Signature> sigs = {
      {{0, 1}, 10},        // name + birthDate           (alive)
      {{0}, 5},            // name only                  (alive)
      {{0, 1, 2, 3}, 4},   // + deathDate, deathPlace    (dead)
      {{0, 2, 3}, 2},      // name + death props         (dead)
  };
  return schema::SignatureIndex::FromSignatures(
      {"name", "birthDate", "deathDate", "deathPlace"}, sigs);
}

TEST(ReportTest, ProfilesDetectAbsentColumns) {
  const schema::SignatureIndex index = AliveDeadIndex();
  SortRefinement refinement;
  // index canonical order: count 10 {name,birthDate}=0, 5 {name}=1,
  // 4 {all}=2, 2 {name,dD,dP}=3.
  refinement.sorts = {{0, 1}, {2, 3}};
  const std::vector<SortProfile> profiles =
      ProfileRefinement(index, refinement);
  ASSERT_EQ(profiles.size(), 2u);

  const SortProfile& alive = profiles[0];
  EXPECT_EQ(alive.subjects, 15);
  EXPECT_EQ(alive.signatures, 2u);
  // The paper's "alive" reading: death columns are absent.
  EXPECT_EQ(alive.absent_properties,
            (std::vector<std::string>{"deathDate", "deathPlace"}));
  EXPECT_EQ(alive.universal_properties, (std::vector<std::string>{"name"}));
  EXPECT_EQ(alive.common_properties, (std::vector<std::string>{"birthDate"}));

  const SortProfile& dead = profiles[1];
  EXPECT_EQ(dead.subjects, 6);
  EXPECT_TRUE(dead.absent_properties.empty());
  // deathDate and deathPlace are universal among the dead sorts.
  EXPECT_NE(std::find(dead.universal_properties.begin(),
                      dead.universal_properties.end(), "deathDate"),
            dead.universal_properties.end());
}

TEST(ReportTest, DiscriminatingPropertiesPointAtDeathColumns) {
  const schema::SignatureIndex index = AliveDeadIndex();
  SortRefinement refinement;
  refinement.sorts = {{0, 1}, {2, 3}};
  const std::vector<SortProfile> profiles =
      ProfileRefinement(index, refinement);
  // For the dead sort the strongest discriminator is a death property with a
  // +1.00 coverage difference.
  const auto& top = profiles[1].discriminating_properties.front();
  EXPECT_TRUE(top.first == "deathDate" || top.first == "deathPlace");
  EXPECT_NEAR(top.second, 1.0, 1e-9);
}

TEST(ReportTest, RenderMentionsKeyFacts) {
  const schema::SignatureIndex index = AliveDeadIndex();
  SortRefinement refinement;
  refinement.sorts = {{0, 1}, {2, 3}};
  const std::string report = RenderReport(index, refinement);
  EXPECT_NE(report.find("implicit sort 1"), std::string::npos);
  EXPECT_NE(report.find("never present:  deathDate, deathPlace"),
            std::string::npos);
  EXPECT_NE(report.find("always present: name"), std::string::npos);
}

TEST(ReportTest, SingleSortReportIsWellFormed) {
  const schema::SignatureIndex index = AliveDeadIndex();
  SortRefinement refinement;
  refinement.sorts = {{0, 1, 2, 3}};
  const std::vector<SortProfile> profiles =
      ProfileRefinement(index, refinement);
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].subjects, 21);
  EXPECT_TRUE(profiles[0].absent_properties.empty());
  // "vs rest" differences are all zero when the sort is the whole dataset.
  for (const auto& [name, diff] : profiles[0].discriminating_properties) {
    (void)name;
    EXPECT_NEAR(diff, 0.0, 1e-9);
  }
}

TEST(ReportTest, WorksOnGeneratedPersons) {
  gen::PersonsConfig config;
  config.num_subjects = 500;
  const schema::SignatureIndex index = gen::GeneratePersons(config);
  SortRefinement refinement;
  std::vector<int> evens, odds;
  for (std::size_t i = 0; i < index.num_signatures(); ++i) {
    (i % 2 == 0 ? evens : odds).push_back(static_cast<int>(i));
  }
  refinement.sorts = {evens, odds};
  const std::string report = RenderReport(index, refinement);
  EXPECT_NE(report.find("implicit sort 2"), std::string::npos);
  EXPECT_NE(report.find("name"), std::string::npos);
}

}  // namespace
}  // namespace rdfsr::core
