// Unit tests for util/: Status, Result, Rational, Rng, TextTable, fits.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>

#include "util/fit.h"
#include "util/rational.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"

namespace rdfsr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(RationalTest, NormalizesSignAndGcd) {
  Rational r(6, -8);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
  EXPECT_EQ(Rational(0, 5), Rational(0));
}

TEST(RationalTest, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(RationalTest, ArithmeticSurvivesInt64CrossProductOverflow) {
  // den * den = 1.6e19 > INT64_MAX, but the reduced sum fits: the 128-bit
  // intermediates must carry it exactly instead of wrapping.
  const Rational tiny(1, 4'000'000'000LL);
  EXPECT_EQ(tiny + tiny, Rational(1, 2'000'000'000LL));
  EXPECT_EQ(tiny - tiny, Rational(0));

  // num * num and den * den both overflow int64 before reduction.
  const Rational big(4'000'000'000'000'000'000LL, 9);
  const Rational inv(9, 4'000'000'000'000'000'000LL);
  EXPECT_EQ(big * inv, Rational(1));
  EXPECT_EQ(big / big, Rational(1));

  // Mixed-sign cross products at the boundary.
  const Rational neg(-4'000'000'000'000'000'000LL, 7);
  EXPECT_EQ(neg * Rational(7, 4'000'000'000'000'000'000LL), Rational(-1));
  EXPECT_EQ(neg - neg, Rational(0));

  // Subtraction whose cross products exceed int64 but whose difference is
  // small and exact.
  const Rational a(9'000'000'000'000'000'000LL, 9'000'000'000'000'000'001LL);
  EXPECT_EQ(a - a, Rational(0));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(9, 10), Rational(8, 9));
  EXPECT_GE(Rational(1), Rational(99, 100));
}

TEST(RationalTest, FromDoubleHitsGridValues) {
  EXPECT_EQ(Rational::FromDouble(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::FromDouble(0.9), Rational(9, 10));
  EXPECT_EQ(Rational::FromDouble(0.01), Rational(1, 100));
  EXPECT_EQ(Rational::FromDouble(1.0), Rational(1));
  EXPECT_EQ(Rational::FromDouble(0.0), Rational(0));
}

TEST(RationalTest, FromDoubleNegativeAndRounding) {
  EXPECT_EQ(Rational::FromDouble(-0.25), Rational(-1, 4));
  const Rational pi = Rational::FromDouble(M_PI, 1000);
  EXPECT_NEAR(pi.ToDouble(), M_PI, 1e-5);
  EXPECT_LE(pi.den(), 1000);
}

TEST(RationalTest, ToStringForms) {
  EXPECT_EQ(Rational(3, 4).ToString(), "3/4");
  EXPECT_EQ(Rational(7).ToString(), "7");
}

TEST(RationalTest, Int64MinEdges) {
  // INT64_MIN exercises the one asymmetry of two's complement: its magnitude
  // does not fit a signed 64-bit value, so every path below used to be a
  // signed-negation UB before the unsigned-magnitude rewrite.
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  const Rational min(kMin, 1);
  EXPECT_EQ(min.num(), kMin);
  EXPECT_EQ(min.den(), 1);
  // Normalization may shrink the magnitude back into range...
  EXPECT_EQ(Rational(kMin, 2), Rational(kMin / 2, 1));
  EXPECT_EQ(Rational(kMin, -2), Rational(-(kMin / 2), 1));
  EXPECT_EQ(Rational(kMin, kMin), Rational(1));
  // ...but a positive result of magnitude 2^63 cannot narrow and must be a
  // checked fatal error, not a silent wrap.
  EXPECT_DEATH(-min, "Rational overflow");
  EXPECT_DEATH(Rational(kMin, -1), "Rational overflow");
  EXPECT_DEATH(min * Rational(-1), "Rational overflow");
  // Every operator reduces into int64 storage, so 2^63 * 2^63 = 2^126 is a
  // checked overflow even if a later division would cancel it back down.
  EXPECT_DEATH(min * min, "Rational overflow");
  // Arithmetic that cancels within one operation's 128-bit intermediates
  // stays exact.
  EXPECT_EQ(min / min, Rational(1));
  EXPECT_EQ(min * Rational(1, 2), Rational(kMin / 2));
  EXPECT_EQ(min + Rational(0), min);
}

TEST(RationalTest, FromDoubleExtremeMagnitudes) {
  // Above the int64 guard the expansion stops before the cast instead of
  // overflowing; the fallback convergent is 0/1.
  EXPECT_EQ(Rational::FromDouble(1e19), Rational(0));
  EXPECT_EQ(Rational::FromDouble(-1e19), Rational(0));
  // 9e18 is below the guard, exactly representable as a double, and fits
  // int64: it must come back exact.
  EXPECT_EQ(Rational::FromDouble(9.0e18), Rational(9'000'000'000'000'000'000LL));
  EXPECT_EQ(Rational::FromDouble(-9.0e18),
            Rational(-9'000'000'000'000'000'000LL));
  // A fractional value near the guard keeps its integer part.
  const Rational near = Rational::FromDouble(8.9e18 + 0.5);
  EXPECT_NEAR(near.ToDouble(), 8.9e18, 1e4);
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(TableTest, RendersHeaderAndRows) {
  TextTable t({"a", "bb"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(0.5405, 2), "0.54");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatCount(790703), "790,703");
  EXPECT_EQ(FormatCount(-1234567), "-1,234,567");
  EXPECT_EQ(FormatCount(12), "12");
}

TEST(FitTest, LinearRecoversLine) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitTest, PowerRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 1; x <= 32; x *= 2) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 2.5));
  }
  const PowerFit fit = FitPower(xs, ys);
  EXPECT_NEAR(fit.b, 2.5, 1e-6);
  EXPECT_NEAR(fit.a, 3.0, 1e-6);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitTest, ExponentialRecoversRate) {
  std::vector<double> xs, ys;
  for (double x = 0; x <= 10; ++x) {
    xs.push_back(x);
    ys.push_back(2.0 * std::exp(0.28 * x));
  }
  const ExpFit fit = FitExponential(xs, ys);
  EXPECT_NEAR(fit.b, 0.28, 1e-6);
  EXPECT_NEAR(fit.a, 2.0, 1e-6);
}

TEST(FitTest, SkipsNonPositivePoints) {
  std::vector<double> xs = {0, 1, 2, 4};
  std::vector<double> ys = {-1, 2, 4, 8};
  const PowerFit fit = FitPower(xs, ys);  // uses (1,2),(2,4),(4,8): y = 2x
  EXPECT_NEAR(fit.b, 1.0, 1e-9);
}

}  // namespace
}  // namespace rdfsr
