// Tests for eval/partitions.h and eval/counting.h: set-partition enumeration
// and the signature-level count(phi, tau, M) against brute-force enumeration
// over the expanded matrix.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "eval/counting.h"
#include "eval/partitions.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"
#include "rules/parser.h"
#include "rules/semantics.h"
#include "schema/signature_index.h"

namespace rdfsr::eval {
namespace {

TEST(PartitionsTest, CountsMatchBellNumbers) {
  for (int n = 0; n <= 7; ++n) {
    std::int64_t visits = 0;
    ForEachSetPartition(n, [&](const std::vector<int>&) {
      ++visits;
      return true;
    });
    EXPECT_EQ(visits, BellNumber(n)) << "n=" << n;
  }
}

TEST(PartitionsTest, BellNumbersKnownValues) {
  EXPECT_EQ(BellNumber(0), 1);
  EXPECT_EQ(BellNumber(1), 1);
  EXPECT_EQ(BellNumber(2), 2);
  EXPECT_EQ(BellNumber(3), 5);
  EXPECT_EQ(BellNumber(4), 15);
  EXPECT_EQ(BellNumber(5), 52);
  EXPECT_EQ(BellNumber(10), 115975);
}

TEST(PartitionsTest, PartitionsAreRestrictedGrowthAndDistinct) {
  std::set<std::vector<int>> seen;
  ForEachSetPartition(4, [&](const std::vector<int>& p) {
    EXPECT_EQ(p[0], 0);
    int max_so_far = 0;
    for (std::size_t i = 1; i < p.size(); ++i) {
      EXPECT_LE(p[i], max_so_far + 1);
      max_so_far = std::max(max_so_far, p[i]);
    }
    EXPECT_TRUE(seen.insert(p).second) << "duplicate partition";
    return true;
  });
  EXPECT_EQ(seen.size(), 15u);
}

TEST(PartitionsTest, EarlyAbort) {
  int visits = 0;
  ForEachSetPartition(5, [&](const std::vector<int>&) {
    return ++visits < 3;
  });
  EXPECT_EQ(visits, 3);
}

/// Brute-force count(phi, tau, M): enumerate concrete assignments on the
/// expanded matrix, keeping those whose (signature, property) pattern matches
/// tau.
BigCount BruteForceCount(const rules::FormulaPtr& phi,
                         const std::vector<std::string>& variables,
                         const RoughAssignment& tau,
                         const schema::SignatureIndex& index) {
  const schema::PropertyMatrix matrix = index.ToMatrix();
  // Subject row -> signature id, via subject names ("sig<i>_<j>").
  const schema::SignatureIndex rebuilt =
      schema::SignatureIndex::FromMatrix(matrix, true);

  const int n = static_cast<int>(variables.size());
  const std::int64_t subjects = matrix.num_subjects();
  const std::int64_t props = matrix.num_properties();
  const std::int64_t cells = subjects * props;
  BigCount count = 0;
  std::vector<std::int64_t> odo(n, 0);
  std::vector<rules::Cell> assign(n);
  while (true) {
    bool compatible = true;
    for (int v = 0; v < n && compatible; ++v) {
      const int s = static_cast<int>(odo[v] / props);
      const int p = static_cast<int>(odo[v] % props);
      assign[v] = {s, p};
      const int sig = rebuilt.FindSubjectSignature(matrix.subject_name(s));
      // `rebuilt` canonical order equals `index` order (same content).
      if (sig != tau.cells[v].first || p != tau.cells[v].second) {
        compatible = false;
      }
    }
    if (compatible && rules::Satisfies(phi, matrix, variables, assign)) {
      ++count;
    }
    int pos = 0;
    while (pos < n && ++odo[pos] == cells) odo[pos++] = 0;
    if (pos == n) break;
  }
  return count;
}

TEST(CountingTest, MatchesBruteForceOnRandomIndexes) {
  const char* formulas[] = {
      "val(c1) = 1",
      "val(c1) = 1 && subj(c1) = subj(c2)",
      "!(c1 = c2) && prop(c1) = prop(c2) && val(c1) = 1",
      "subj(c1) = subj(c2) && val(c1) = val(c2)",
      "val(c1) = 1 || val(c2) = 0",
      "c1 = c2",
      "!(subj(c1) = subj(c2))",
  };
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 3;
    spec.num_properties = 3;
    spec.max_count = 3;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    for (const char* text : formulas) {
      auto phi = rules::ParseFormula(text);
      ASSERT_TRUE(phi.ok()) << text;
      std::vector<std::string> vars;
      rules::CollectVariables(*phi, &vars);
      // Sweep a sample of rough assignments.
      for (int s1 = 0; s1 < 3; ++s1) {
        for (int p1 = 0; p1 < 3; ++p1) {
          RoughAssignment tau;
          tau.cells.push_back({s1, p1});
          if (vars.size() == 2) tau.cells.push_back({(s1 + 1) % 3, p1});
          const BigCount fast = CountCompatible(*phi, vars, tau, index);
          const BigCount slow = BruteForceCount(*phi, vars, tau, index);
          EXPECT_EQ(static_cast<long long>(fast),
                    static_cast<long long>(slow))
              << "seed=" << seed << " formula=" << text << " tau=(" << s1
              << "," << p1 << ")";
        }
      }
    }
  }
}

TEST(CountingTest, SubjectConstantsCounted) {
  // Two signatures: {p0} x2 (s0,s1), {p0,p1} x1 (s2).
  const schema::PropertyMatrix m = schema::PropertyMatrix::FromRows(
      {{1, 0}, {1, 0}, {1, 1}}, {"s0", "s1", "s2"}, {"p0", "p1"});
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromMatrix(m, true);
  // Signature 0 = {p0} (count 2), signature 1 = {p0,p1} (count 1).
  auto phi = rules::ParseFormula("subj(c) = s0");
  ASSERT_TRUE(phi.ok());
  RoughAssignment tau;
  tau.cells.push_back({0, 0});
  // Exactly one assignment: c -> (s0, p0).
  EXPECT_EQ(static_cast<long long>(
                CountCompatible(*phi, {"c"}, tau, index)),
            1);
  // The complement: the other subject of signature 0.
  auto neg = rules::ParseFormula("!(subj(c) = s0)");
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(static_cast<long long>(CountCompatible(*neg, {"c"}, tau, index)),
            1);
  // Unknown subject constant: nothing satisfies equality.
  auto ghost = rules::ParseFormula("subj(c) = ghost");
  ASSERT_TRUE(ghost.ok());
  EXPECT_EQ(static_cast<long long>(CountCompatible(*ghost, {"c"}, tau, index)),
            0);
}

TEST(CountingTest, SubjectEqualityRestrictsToSameSignature) {
  std::vector<schema::Signature> sigs = {{{0}, 3}, {{0, 1}, 2}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"p0", "p1"}, sigs);
  auto phi = rules::ParseFormula("subj(c1) = subj(c2)");
  ASSERT_TRUE(phi.ok());
  // Same signature (id 0, count 3): 3 subject choices.
  RoughAssignment same;
  same.cells = {{0, 0}, {0, 1}};
  EXPECT_EQ(static_cast<long long>(
                CountCompatible(*phi, {"c1", "c2"}, same, index)),
            3);
  // Different signatures: impossible.
  RoughAssignment diff;
  diff.cells = {{0, 0}, {1, 0}};
  EXPECT_EQ(static_cast<long long>(
                CountCompatible(*phi, {"c1", "c2"}, diff, index)),
            0);
}

TEST(CountingTest, DistinctSubjectsUseFallingFactorial) {
  std::vector<schema::Signature> sigs = {{{0}, 4}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"p0"}, sigs);
  auto phi = rules::ParseFormula("!(subj(c1) = subj(c2))");
  ASSERT_TRUE(phi.ok());
  RoughAssignment tau;
  tau.cells = {{0, 0}, {0, 0}};
  // 4 * 3 ordered pairs of distinct subjects.
  EXPECT_EQ(static_cast<long long>(
                CountCompatible(*phi, {"c1", "c2"}, tau, index)),
            12);
}

TEST(CountingTest, CountRuleCasesConsistentWithTwoCalls) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 4;
  spec.num_properties = 3;
  spec.max_count = 5;
  spec.seed = 99;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  const rules::Rule rule = rules::SimRule();
  RoughAssignment tau;
  tau.cells = {{0, 1}, {1, 1}};
  const SigmaCounts both = CountRuleCases(
      rule.antecedent(), rule.consequent(), rule.variables(), tau, index);
  const BigCount total =
      CountCompatible(rule.antecedent(), rule.variables(), tau, index);
  const BigCount favorable = CountCompatible(
      rules::And(rule.antecedent(), rule.consequent()), rule.variables(), tau,
      index);
  EXPECT_EQ(static_cast<long long>(both.total), static_cast<long long>(total));
  EXPECT_EQ(static_cast<long long>(both.favorable),
            static_cast<long long>(favorable));
}

TEST(BigCountTest, ToStringHandlesLargeAndNegative) {
  EXPECT_EQ(BigCountToString(0), "0");
  EXPECT_EQ(BigCountToString(-42), "-42");
  BigCount big = 1;
  for (int i = 0; i < 20; ++i) big *= 10;
  EXPECT_EQ(BigCountToString(big), "100000000000000000000");
}

}  // namespace
}  // namespace rdfsr::eval
