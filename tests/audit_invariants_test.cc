// Corruption-oracle tests for the audit-mode CheckInvariants() methods.
//
// Clean objects must pass; objects whose private state is torn through the
// AuditTestPeer friend hooks must die with the specific invariant message.
// This is what keeps the invariant checkers honest: a checker that cannot
// detect a planted corruption would silently pass audit CI forever.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "eval/sort_stats.h"
#include "ilp/model.h"
#include "core/ilp_builder.h"
#include "rdf/graph.h"
#include "schema/signature_index.h"
#include "util/rational.h"

namespace rdfsr::schema {

// Friend of SignatureIndex (and, transitively, the only sanctioned way for
// tests to tear its private state).
struct AuditTestPeer {
  static void CorruptTotalSubjects(SignatureIndex* index) {
    index->total_subjects_ += 1;
  }
  static void BreakCanonicalOrder(SignatureIndex* index) {
    std::swap(index->signatures_.front(), index->signatures_.back());
  }
  static void PoisonPropertyMap(SignatureIndex* index) {
    index->property_index_["no-such-property"] = 0;
  }
};

}  // namespace rdfsr::schema

namespace rdfsr::eval {

// Friend of SortStats.
struct AuditTestPeer {
  static void CorruptSubjects(SortStats* stats) { stats->subjects_ += 1; }
  static void CorruptOneCount(SortStats* stats) {
    if (stats->counts_dense_) {
      for (auto& c : stats->property_count_) {
        if (c != 0) {
          c += 1;
          return;
        }
      }
    } else {
      stats->sparse_counts_.front() += 1;
    }
  }
  static void FlipCountRepresentation(SortStats* stats) {
    stats->counts_dense_ = !stats->counts_dense_;
  }
  static void PlantPhantomMember(SortStats* stats, int sig_id) {
    stats->members_.Insert(static_cast<std::size_t>(sig_id));
  }
};

}  // namespace rdfsr::eval

namespace rdfsr {
namespace {

schema::SignatureIndex MakeIndex() {
  std::vector<schema::Signature> sigs;
  sigs.emplace_back(std::vector<int>{0, 1}, 5);
  sigs.emplace_back(std::vector<int>{1, 2}, 3);
  sigs.emplace_back(std::vector<int>{0}, 2);
  return schema::SignatureIndex::FromSignatures({"p0", "p1", "p2"},
                                                std::move(sigs));
}

TEST(SignatureIndexInvariantsTest, CleanIndexPasses) {
  MakeIndex().CheckInvariants();
}

TEST(SignatureIndexInvariantsDeathTest, DetectsStaleSubjectTotal) {
  schema::SignatureIndex index = MakeIndex();
  schema::AuditTestPeer::CorruptTotalSubjects(&index);
  EXPECT_DEATH(index.CheckInvariants(), "total_subjects out of sync");
}

TEST(SignatureIndexInvariantsDeathTest, DetectsBrokenCanonicalOrder) {
  schema::SignatureIndex index = MakeIndex();
  schema::AuditTestPeer::BreakCanonicalOrder(&index);
  EXPECT_DEATH(index.CheckInvariants(), "violate \\(count desc, lex asc\\)");
}

TEST(SignatureIndexInvariantsDeathTest, DetectsPoisonedPropertyMap) {
  schema::SignatureIndex index = MakeIndex();
  schema::AuditTestPeer::PoisonPropertyMap(&index);
  EXPECT_DEATH(index.CheckInvariants(), "property map size mismatch");
}

TEST(SortStatsInvariantsTest, CleanStatsPassThroughMutations) {
  const schema::SignatureIndex index = MakeIndex();
  eval::SortStats stats(&index, /*pair_p1=*/0, /*pair_p2=*/1);
  stats.CheckInvariants();  // empty
  stats.Add(0);
  stats.CheckInvariants();
  stats.Add(2);
  stats.CheckInvariants();
  stats.Remove(0);
  stats.CheckInvariants();

  eval::SortStats other(&index, 0, 1);
  other.Add(1);
  stats.MergeWith(other);
  stats.CheckInvariants();
}

TEST(SortStatsInvariantsDeathTest, DetectsStaleSubjectAggregate) {
  const schema::SignatureIndex index = MakeIndex();
  eval::SortStats stats(&index);
  stats.Add(0);
  eval::AuditTestPeer::CorruptSubjects(&stats);
  EXPECT_DEATH(stats.CheckInvariants(), "subjects aggregate out of sync");
}

TEST(SortStatsInvariantsDeathTest, DetectsTornPropertyCount) {
  const schema::SignatureIndex index = MakeIndex();
  eval::SortStats stats(&index);
  stats.Add(0);
  stats.Add(1);
  eval::AuditTestPeer::CorruptOneCount(&stats);
  EXPECT_DEATH(stats.CheckInvariants(), "out of sync");
}

TEST(SortStatsInvariantsDeathTest, DetectsRepresentationFlagLie) {
  const schema::SignatureIndex index = MakeIndex();
  eval::SortStats stats(&index);
  stats.Add(0);
  eval::AuditTestPeer::FlipCountRepresentation(&stats);
  EXPECT_DEATH(stats.CheckInvariants(), "");
}

TEST(SortStatsInvariantsDeathTest, DetectsPhantomMember) {
  const schema::SignatureIndex index = MakeIndex();
  eval::SortStats stats(&index);
  stats.Add(0);
  eval::AuditTestPeer::PlantPhantomMember(&stats, 2);
  EXPECT_DEATH(stats.CheckInvariants(), "member count out of sync");
}

TEST(GraphInvariantsTest, CleanGraphAndDictionaryPass) {
  rdf::Graph graph;
  graph.AddIri("http://x/a", "http://x/p", "http://x/b");
  graph.AddIri("http://x/a", "http://x/q", "http://x/c");
  graph.AddIri("http://x/b", "http://x/p", "http://x/a");
  graph.AddIri("http://x/a", "http://x/p", "http://x/b");  // duplicate, ignored
  EXPECT_EQ(graph.size(), 3u);
  graph.CheckInvariants();
  graph.dict().CheckInvariants();
}

TEST(ModelInvariantsTest, CleanModelPassesThroughUpdates) {
  ilp::Model model;
  const int x = model.AddBinary("x");
  const int y = model.AddBinary("y");
  const int row = model.AddConstraint("sum", {{x, 1.0}, {y, 1.0}}, 1, 1);
  model.CheckInvariants();
  // The in-place update APIs must preserve the merged/sorted-term invariant.
  model.SetConstraintTerms(row, {{y, 2.0}, {x, 1.0}, {y, -1.0}}, 0, 2);
  model.SetConstraintBounds(row, 0, 1);
  model.SetObjective({{x, 1.0}, {x, 1.0}});
  model.CheckInvariants();
}

TEST(IlpInstanceInvariantsTest, InstancePassesAfterEveryReweight) {
  const schema::SignatureIndex index = MakeIndex();
  core::RefinementIlpInstance instance(index, /*shapes=*/{}, /*k=*/2);
  instance.Reweight(Rational(1, 2));
  instance.CheckInvariants();
  instance.Reweight(Rational(9, 10));
  instance.CheckInvariants();
}

}  // namespace
}  // namespace rdfsr
