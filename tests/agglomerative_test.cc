// Tests for the agglomerative merge heuristics (core/greedy.h): lowest-k
// upper bounds, fixed-k clustering, determinism, and interaction with the
// solver's heuristic ladder.

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/solver.h"
#include "eval/evaluator.h"
#include "gen/persons.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"

namespace rdfsr::core {
namespace {

TEST(AgglomerativeTest, SingletonSortsHaveSigmaOneUnderBuiltins) {
  // The lowest-k heuristic's starting point: one sort per signature. For the
  // builtin families each singleton sort is perfectly structured.
  gen::RandomIndexSpec spec;
  spec.num_signatures = 6;
  spec.num_properties = 4;
  spec.seed = 21;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  auto sim = eval::MakeEvaluator(rules::SimRule(), &index);
  for (std::size_t i = 0; i < index.num_signatures(); ++i) {
    EXPECT_DOUBLE_EQ(cov->Sigma({static_cast<int>(i)}), 1.0);
    EXPECT_DOUBLE_EQ(sim->Sigma({static_cast<int>(i)}), 1.0);
  }
}

TEST(AgglomerativeTest, LowestKRespectsThresholdExactly) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 8;
    spec.num_properties = 5;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
    const Rational theta(9, 10);
    const SortRefinement ref = AgglomerativeLowestK(*cov, theta);
    EXPECT_TRUE(ValidateRefinement(*cov, ref, theta).ok()) << "seed " << seed;
  }
}

TEST(AgglomerativeTest, ThresholdZeroMergesEverything) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 7;
  spec.seed = 4;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  const SortRefinement ref = AgglomerativeLowestK(*cov, Rational(0));
  EXPECT_EQ(ref.num_sorts(), 1u);
  EXPECT_EQ(ref.sorts[0].size(), 7u);
}

TEST(AgglomerativeTest, ThresholdOneMergesOnlyCompatibleSignatures) {
  // Three mutually incompatible supports: under Cov, theta = 1 forbids every
  // merge (each pair's union view has empty cells), so the heuristic must
  // stop at three singleton sorts.
  std::vector<schema::Signature> sigs = {{{0, 1}, 8}, {{2}, 4}, {{0}, 2}};
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromSignatures({"a", "b", "c"}, sigs);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  const SortRefinement ref = AgglomerativeLowestK(*cov, Rational(1));
  // No pair of distinct supports can share a sort at Cov = 1.
  EXPECT_EQ(ref.num_sorts(), 3u);
  EXPECT_TRUE(ValidateRefinement(*cov, ref, Rational(1)).ok());
}

TEST(AgglomerativeTest, FixedKReachesExactlyK) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 9;
  spec.seed = 13;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  for (int k = 1; k <= 4; ++k) {
    const SortRefinement ref = AgglomerativeFixedK(*cov, k);
    EXPECT_EQ(ref.num_sorts(), static_cast<std::size_t>(k));
    EXPECT_TRUE(ValidateRefinement(*cov, ref, Rational(0)).ok());
  }
}

TEST(AgglomerativeTest, FixedKBeyondSignatureCountKeepsSingletons) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 4;
  spec.seed = 2;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  const SortRefinement ref = AgglomerativeFixedK(*cov, 10);
  EXPECT_EQ(ref.num_sorts(), 4u);
}

TEST(AgglomerativeTest, Deterministic) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 10;
  spec.seed = 31;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto sim = eval::MakeEvaluator(rules::SimRule(), &index);
  const SortRefinement a = AgglomerativeLowestK(*sim, Rational(95, 100));
  const SortRefinement b = AgglomerativeLowestK(*sim, Rational(95, 100));
  ASSERT_EQ(a.num_sorts(), b.num_sorts());
  for (std::size_t i = 0; i < a.num_sorts(); ++i) {
    EXPECT_EQ(a.sorts[i], b.sorts[i]);
  }
}

TEST(AgglomerativeTest, UpperBoundsLowestKOnPersons) {
  // On the calibrated Persons twin the merge heuristic should find a
  // theta = 0.9 Cov refinement with a k in the vicinity of the paper's 9
  // (it is an upper bound on the true lowest k).
  gen::PersonsConfig config;
  config.num_subjects = 2000;
  const schema::SignatureIndex index = gen::GeneratePersons(config);
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  const SortRefinement ref = AgglomerativeLowestK(*cov, Rational(9, 10));
  EXPECT_TRUE(ValidateRefinement(*cov, ref, Rational(9, 10)).ok());
  EXPECT_LE(ref.num_sorts(), 16u);
  EXPECT_GE(ref.num_sorts(), 5u);
}

TEST(AgglomerativeTest, SolverUsesHeuristicLadder) {
  // A dataset where the agglomerative bound is tight: two compatible
  // families. The solver should answer via heuristics (no MIP nodes).
  std::vector<schema::Signature> sigs = {
      {{0, 1}, 10}, {{0, 1, 2}, 6}, {{3}, 9}, {{3, 4}, 5}};
  const schema::SignatureIndex index = schema::SignatureIndex::FromSignatures(
      {"a", "b", "c", "d", "e"}, sigs);
  auto sim = eval::MakeEvaluator(rules::SimRule(), &index);
  RefinementSolver solver(sim.get());
  const DecisionResult r = solver.Exists(2, Rational(8, 10));
  EXPECT_EQ(r.decision, Decision::kExists);
  EXPECT_TRUE(r.via_greedy);
  EXPECT_EQ(r.mip_nodes, 0);
}

}  // namespace
}  // namespace rdfsr::core
