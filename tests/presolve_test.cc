// Presolve tests: each reduction in isolation, solution restoration, and a
// randomized equivalence sweep (presolve on vs off must agree through the
// full MIP stack).

#include <gtest/gtest.h>

#include <cmath>

#include "ilp/branch_and_bound.h"
#include "ilp/presolve.h"
#include "util/rng.h"

namespace rdfsr::ilp {
namespace {

TEST(PresolveTest, DropsEmptyAndRedundantRows) {
  Model m;
  const int x = m.AddVariable("x", 0, 1, false);
  m.AddConstraint("redundant", {{x, 1.0}}, -5, 5);  // activity [0,1] inside
  const PresolveResult pre = Presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  EXPECT_EQ(pre.reduced.num_constraints(), 0u);
  EXPECT_EQ(pre.reduced.num_variables(), 1u);
}

TEST(PresolveTest, SingletonRowTightensBounds) {
  Model m;
  const int x = m.AddVariable("x", 0, 10, false);
  m.AddConstraint("cap", {{x, 2.0}}, 1, 6);  // => x in [0.5, 3]
  const PresolveResult pre = Presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  ASSERT_EQ(pre.reduced.num_variables(), 1u);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).lower, 0.5);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).upper, 3.0);
  EXPECT_EQ(pre.reduced.num_constraints(), 0u);
}

TEST(PresolveTest, NegativeCoefficientSingleton) {
  Model m;
  (void)m.AddVariable("x", -10, 10, false);
  m.AddConstraint("neg", {{0, -1.0}}, -4, 2);  // -x in [-4,2] => x in [-2,4]
  const PresolveResult pre = Presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).lower, -2.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).upper, 4.0);
}

TEST(PresolveTest, IntegerBoundRounding) {
  Model m;
  (void)m.AddVariable("n", 0.4, 3.7, true);
  const PresolveResult pre = Presolve(m);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).lower, 1.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).upper, 3.0);
}

TEST(PresolveTest, IntegerDomainCanEmptyOut) {
  Model m;
  (void)m.AddVariable("n", 0.2, 0.8, true);  // no integer inside
  const PresolveResult pre = Presolve(m);
  EXPECT_TRUE(pre.proven_infeasible);
}

TEST(PresolveTest, FixedVariablesSubstituted) {
  Model m;
  const int x = m.AddVariable("x", 3, 3, false);  // fixed at 3
  const int y = m.AddVariable("y", 0, 10, false);
  m.AddConstraint("sum", {{x, 2.0}, {y, 1.0}}, 8, 12);  // => y in [2, 6]
  m.SetObjective({{x, 10.0}, {y, 1.0}});
  const PresolveResult pre = Presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  EXPECT_EQ(pre.reduced.num_variables(), 1u);  // only y survives
  EXPECT_DOUBLE_EQ(pre.objective_offset, 30.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).lower, 2.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variable(0).upper, 6.0);
  // Restoration puts the fixed value back.
  const std::vector<double> x_full = pre.RestoreSolution({4.0});
  ASSERT_EQ(x_full.size(), 2u);
  EXPECT_DOUBLE_EQ(x_full[0], 3.0);
  EXPECT_DOUBLE_EQ(x_full[1], 4.0);
}

TEST(PresolveTest, DetectsActivityInfeasibility) {
  Model m;
  const int x = m.AddVariable("x", 0, 1, false);
  const int y = m.AddVariable("y", 0, 1, false);
  m.AddConstraint("impossible", {{x, 1.0}, {y, 1.0}}, 3, 5);  // max act = 2
  const PresolveResult pre = Presolve(m);
  EXPECT_TRUE(pre.proven_infeasible);
}

TEST(PresolveTest, CascadingFixpoint) {
  // Singleton fixes x; substitution turns the pair row into a singleton for
  // y; that fixes y too.
  Model m;
  const int x = m.AddVariable("x", 0, 10, true);
  const int y = m.AddVariable("y", 0, 10, true);
  m.AddConstraint("fix_x", {{x, 1.0}}, 7, 7);
  m.AddConstraint("pair", {{x, 1.0}, {y, 1.0}}, 9, 9);
  const PresolveResult pre = Presolve(m);
  ASSERT_FALSE(pre.proven_infeasible);
  EXPECT_EQ(pre.reduced.num_variables(), 0u);
  EXPECT_DOUBLE_EQ(pre.fixed_values[x], 7.0);
  EXPECT_DOUBLE_EQ(pre.fixed_values[y], 2.0);
}

TEST(PresolveTest, SolveMipWithFullyPresolvedModel) {
  Model m;
  const int x = m.AddVariable("x", 0, 10, true);
  m.AddConstraint("fix", {{x, 1.0}}, 4, 4);
  m.SetObjective({{x, 2.0}});
  MipOptions options;
  options.stop_at_first_incumbent = false;
  const MipResult r = SolveMip(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  ASSERT_EQ(r.x.size(), 1u);
  EXPECT_DOUBLE_EQ(r.x[0], 4.0);
  EXPECT_DOUBLE_EQ(r.objective, 8.0);
}

class PresolveEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PresolveEquivalenceTest, OnOffAgreeThroughMip) {
  Rng rng(GetParam());
  Model m;
  const int n = 4 + static_cast<int>(rng.Below(5));
  for (int j = 0; j < n; ++j) m.AddBinary("b");
  const int rows = 2 + static_cast<int>(rng.Below(4));
  for (int r = 0; r < rows; ++r) {
    std::vector<LinTerm> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.Chance(0.5)) {
        terms.push_back({j, static_cast<double>(rng.Range(-2, 3))});
      }
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const double lo = static_cast<double>(rng.Range(-2, 2));
    m.AddConstraint("r", std::move(terms), lo,
                    lo + static_cast<double>(rng.Below(4)));
  }
  std::vector<LinTerm> obj;
  for (int j = 0; j < n; ++j) {
    obj.push_back({j, static_cast<double>(rng.Range(-4, 4))});
  }
  m.SetObjective(obj);

  MipOptions with, without;
  with.use_presolve = true;
  without.use_presolve = false;
  with.stop_at_first_incumbent = false;
  without.stop_at_first_incumbent = false;
  const MipResult a = SolveMip(m, with);
  const MipResult b = SolveMip(m, without);
  EXPECT_EQ(a.status == MipStatus::kInfeasible,
            b.status == MipStatus::kInfeasible)
      << "seed " << GetParam();
  if (a.status == MipStatus::kOptimal && b.status == MipStatus::kOptimal) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed " << GetParam();
    EXPECT_TRUE(m.IsFeasible(a.x, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace rdfsr::ilp
