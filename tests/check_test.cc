// Death tests for the check macro tiers (util/check.h).
//
// RDFSR_AUDIT is force-defined before the include so the DCHECK tier is
// active in this translation unit even when the suite is built Release
// (NDEBUG): these tests lock the ENABLED semantics. The disabled variant
// still parses (but never evaluates) its condition; the library's plain
// release build compiling is what verifies that side.
#define RDFSR_AUDIT 1
#include "util/check.h"

#include <gtest/gtest.h>

namespace rdfsr {
namespace {

static_assert(kDChecksEnabled,
              "RDFSR_AUDIT must force the DCHECK tier on in this TU");
static_assert(audit_enabled(),
              "audit_enabled() must reflect the RDFSR_AUDIT define");

TEST(CheckTest, PassingCheckIsSilentAndEvaluatesOnce) {
  int evaluations = 0;
  RDFSR_CHECK(++evaluations == 1) << "never shown";
  EXPECT_EQ(evaluations, 1);
  RDFSR_CHECK_EQ(2 + 2, 4);
  RDFSR_CHECK_NE(1, 2);
  RDFSR_CHECK_LT(1, 2);
  RDFSR_CHECK_LE(2, 2);
  RDFSR_CHECK_GT(3, 2);
  RDFSR_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailureReportsExpressionAndStreamedMessage) {
  EXPECT_DEATH(RDFSR_CHECK(1 == 2) << "context " << 42,
               "CHECK failed at .*check_test.cc:.*1 == 2.*context 42");
}

TEST(CheckDeathTest, ComparisonMacrosDie) {
  EXPECT_DEATH(RDFSR_CHECK_EQ(1, 2), "CHECK failed");
  EXPECT_DEATH(RDFSR_CHECK_LT(2, 1), "CHECK failed");
  EXPECT_DEATH(RDFSR_CHECK_GE(1, 2), "CHECK failed");
}

TEST(CheckDeathTest, DCheckDiesWhenEnabled) {
  EXPECT_DEATH(RDFSR_DCHECK(false) << "audit caught it", "audit caught it");
  EXPECT_DEATH(RDFSR_DCHECK_EQ(1, 2), "CHECK failed");
  EXPECT_DEATH(RDFSR_DCHECK_LE(3, 2) << "ordering", "ordering");
}

TEST(CheckTest, DCheckEvaluatesConditionWhenEnabled) {
  int evaluations = 0;
  RDFSR_DCHECK(++evaluations == 1) << "never shown";
  EXPECT_EQ(evaluations, 1);
}

// The macro must bind as a single statement in unbraced if/else.
TEST(CheckTest, MacrosAreSingleStatements) {
  bool reached_else = false;
  if (false)
    RDFSR_CHECK(false) << "dead branch";
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
  if (false)
    RDFSR_DCHECK(false) << "dead branch";
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

struct InvariantProbe {
  mutable int calls = 0;
  void CheckInvariants() const { ++calls; }
};

TEST(CheckTest, AuditMacroInvokesCheckInvariants) {
  // This TU is compiled at the audit level (see the #define above), so the
  // boundary macro must forward to the method.
  InvariantProbe probe;
  RDFSR_AUDIT_CHECK_INVARIANTS(probe);
  EXPECT_EQ(probe.calls, 1);
}

TEST(CheckDeathTest, AuditMacroPropagatesFatalInvariantFailure) {
  struct Broken {
    void CheckInvariants() const {
      RDFSR_CHECK(false) << "invariant torn";
    }
  } broken;
  EXPECT_DEATH(RDFSR_AUDIT_CHECK_INVARIANTS(broken), "invariant torn");
}

}  // namespace
}  // namespace rdfsr
