// Property tests for the incremental SortStats subsystem (eval/sort_stats.h):
// random Add/Remove/MergeWith sequences must always match a scratch
// SubsetStats::Compute + closed-form recompute — exactly, favorable and total
// as integers — for all six builtin rule families, so the refinement
// heuristics can trust the incremental path bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "eval/cached_evaluator.h"
#include "eval/closed_form.h"
#include "eval/evaluator.h"
#include "eval/sort_stats.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"
#include "util/rng.h"

namespace rdfsr::eval {
namespace {

/// All six families over an index, built through the public factories so the
/// stats path inherits each evaluator's resolved parameters.
std::vector<std::unique_ptr<Evaluator>> AllFamilies(
    const schema::SignatureIndex& index) {
  std::vector<std::unique_ptr<Evaluator>> out;
  out.push_back(ClosedFormEvaluator::Cov(&index));
  out.push_back(ClosedFormEvaluator::Sim(&index));
  const std::string p0 = index.property_name(0);
  const std::string p1 = index.property_name(1 % index.num_properties());
  out.push_back(ClosedFormEvaluator::CovIgnoring(&index, {p0, "missing"}));
  out.push_back(ClosedFormEvaluator::Dep(&index, p0, p1));
  out.push_back(ClosedFormEvaluator::SymDep(&index, p0, p1));
  out.push_back(ClosedFormEvaluator::DepDisj(&index, p1, p0));
  return out;
}

void ExpectCountsEqual(const SigmaCounts& got, const SigmaCounts& want,
                       const std::string& context) {
  EXPECT_TRUE(got.favorable == want.favorable && got.total == want.total)
      << context << ": incremental " << BigCountToString(got.favorable) << "/"
      << BigCountToString(got.total) << " vs scratch "
      << BigCountToString(want.favorable) << "/"
      << BigCountToString(want.total);
}

TEST(SortStatsTest, RandomMutationSequencesMatchScratchRecompute) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 10;
    spec.num_properties = 7;
    spec.max_count = 40;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    const auto evaluators = AllFamilies(index);

    Rng rng(seed * 977 + 5);
    for (const auto& evaluator : evaluators) {
      SortStats stats = evaluator->MakeStats();
      std::vector<int> members;  // mirror of the stats' member set
      for (int step = 0; step < 200; ++step) {
        const int n = static_cast<int>(index.num_signatures());
        const std::uint64_t op = rng.Below(3);
        if (op == 0 || members.empty()) {
          // Add a random non-member (if one exists).
          std::vector<int> outside;
          for (int i = 0; i < n; ++i) {
            if (std::find(members.begin(), members.end(), i) == members.end())
              outside.push_back(i);
          }
          if (outside.empty()) continue;
          const int sig = outside[rng.Below(outside.size())];
          stats.Add(sig);
          members.push_back(sig);
        } else if (op == 1) {
          const std::size_t at = rng.Below(members.size());
          stats.Remove(members[at]);
          members.erase(members.begin() + static_cast<std::ptrdiff_t>(at));
        } else {
          // Merge a random disjoint subset in.
          SortStats other = evaluator->MakeStats();
          std::vector<int> added;
          for (int i = 0; i < n; ++i) {
            if (std::find(members.begin(), members.end(), i) != members.end())
              continue;
            if (rng.Chance(0.4)) {
              other.Add(i);
              added.push_back(i);
            }
          }
          stats.MergeWith(other);
          members.insert(members.end(), added.begin(), added.end());
        }
        ExpectCountsEqual(
            evaluator->CountsFromStats(stats), evaluator->Counts(members),
            evaluator->rule().name() + " seed " + std::to_string(seed) +
                " step " + std::to_string(step));
      }
    }
  }
}

TEST(SortStatsTest, MergedPairExtractionMatchesMergeThenExtract) {
  // The agglomerative candidate probe: CountsFromMergedStats over two
  // disjoint stats must equal materializing the merge, for all families.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    gen::RandomIndexSpec spec;
    spec.num_signatures = 11;
    spec.num_properties = 7;
    spec.seed = seed;
    const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
    const auto evaluators = AllFamilies(index);
    Rng rng(seed * 31 + 7);
    for (const auto& evaluator : evaluators) {
      for (int trial = 0; trial < 20; ++trial) {
        SortStats a = evaluator->MakeStats();
        SortStats b = evaluator->MakeStats();
        std::vector<int> all;
        for (std::size_t i = 0; i < index.num_signatures(); ++i) {
          const std::uint64_t where = rng.Below(3);
          if (where == 0) {
            a.Add(static_cast<int>(i));
            all.push_back(static_cast<int>(i));
          } else if (where == 1) {
            b.Add(static_cast<int>(i));
            all.push_back(static_cast<int>(i));
          }
        }
        ExpectCountsEqual(
            evaluator->CountsFromMergedStats(a, b), evaluator->Counts(all),
            evaluator->rule().name() + " merged-pair seed " +
                std::to_string(seed) + " trial " + std::to_string(trial));
      }
    }
  }
}

TEST(SortStatsTest, AggregatesMatchScratchSubsetStats) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 9;
  spec.num_properties = 6;
  spec.seed = 3;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  const std::vector<int> subset = {0, 2, 5, 7};
  SortStats stats(&index);
  for (int id : subset) stats.Add(id);

  const SubsetStats scratch = SubsetStats::Compute(index, subset);
  EXPECT_TRUE(stats.subjects() == scratch.subjects);
  EXPECT_TRUE(stats.support_sum() == scratch.support_sum);
  EXPECT_EQ(stats.used_properties(), scratch.used_properties);
  EXPECT_EQ(static_cast<int>(stats.used().Popcount()),
            scratch.used_properties);
  for (std::size_t p = 0; p < index.num_properties(); ++p) {
    EXPECT_TRUE(BigCount{stats.property_count(p)} ==
                scratch.property_count[p])
        << "property " << p;
  }
  EXPECT_EQ(stats.num_members(), subset.size());
  EXPECT_EQ(stats.members().ToVector(), subset);
}

TEST(SortStatsTest, RemoveUndoesAddExactly) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = 8;
  spec.seed = 11;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto sim = ClosedFormEvaluator::Sim(&index);
  SortStats stats = sim->MakeStats();
  stats.Add(1);
  stats.Add(4);
  const SigmaCounts before = sim->CountsFromStats(stats);
  stats.Add(6);
  stats.Remove(6);
  const SigmaCounts after = sim->CountsFromStats(stats);
  ExpectCountsEqual(after, before, "add/remove roundtrip");
  stats.Remove(1);
  stats.Remove(4);
  EXPECT_TRUE(stats.empty());
  EXPECT_TRUE(stats.subjects() == 0);
  EXPECT_TRUE(stats.count_sq_sum() == 0);
  EXPECT_EQ(stats.used_properties(), 0);
}

TEST(SortStatsTest, CachedEvaluatorSharesMemoAcrossBothEntryPoints) {
  // For evaluators whose Counts are expensive (the generic enumerator), the
  // stats path and the id-vector path share one memo table.
  gen::RandomIndexSpec spec;
  spec.num_signatures = 6;
  spec.seed = 8;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  GenericEvaluator cov(rules::CovRule(), &index);
  CachedEvaluator cached(&cov);

  SortStats stats = cached.MakeStats();
  stats.Add(0);
  stats.Add(3);
  const SigmaCounts via_stats = cached.CountsFromStats(stats);
  EXPECT_EQ(cached.misses(), 1u);
  // The id-vector entry point must hit the memo entry the stats path wrote.
  const SigmaCounts via_ids = cached.Counts({0, 3});
  EXPECT_EQ(cached.hits(), 1u);
  ExpectCountsEqual(via_ids, via_stats, "cache sharing");
  // And the other direction.
  const SigmaCounts all = cached.Counts({0, 1, 2, 3, 4, 5});
  SortStats all_stats = cached.MakeStats();
  for (int i = 0; i < 6; ++i) all_stats.Add(i);
  const SigmaCounts all_via_stats = cached.CountsFromStats(all_stats);
  EXPECT_EQ(cached.hits(), 2u);
  ExpectCountsEqual(all_via_stats, all, "cache sharing reverse");
}

TEST(SortStatsTest, CachedEvaluatorBypassesMemoForCheapClosedForms) {
  // Closed-form stats extractions are cheaper than hashing the member key,
  // so the wrapper must delegate stats probes without touching the memo —
  // the production solver wraps every evaluator, and the agglomerative
  // heuristic issues O(n^2) probes through it.
  gen::RandomIndexSpec spec;
  spec.num_signatures = 6;
  spec.seed = 8;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto cov = ClosedFormEvaluator::Cov(&index);
  ASSERT_TRUE(cov->cheap_stats());
  CachedEvaluator cached(cov.get());
  EXPECT_TRUE(cached.cheap_stats());

  SortStats stats = cached.MakeStats();
  stats.Add(0);
  stats.Add(3);
  SortStats other = cached.MakeStats();
  other.Add(1);
  const SigmaCounts via_stats = cached.CountsFromStats(stats);
  cached.CountsFromMergedStats(stats, other);
  EXPECT_EQ(cached.misses(), 0u);
  EXPECT_EQ(cached.hits(), 0u);
  ExpectCountsEqual(via_stats, cov->CountsFromStats(stats), "bypass");
  // The id-vector entry point still memoizes (scratch closed forms walk
  // members, so validation-heavy paths keep their cache).
  cached.Counts({0, 3});
  EXPECT_EQ(cached.misses(), 1u);
}

TEST(SortStatsTest, GenericEvaluatorFallsBackToMemberCounts) {
  // A rule with no closed form exercises the base-class fallback: stats carry
  // their member set, so CountsFromStats must agree with Counts.
  gen::RandomIndexSpec spec;
  spec.num_signatures = 5;
  spec.num_properties = 4;
  spec.seed = 2;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  // prop(c1) = prop(c2) |-> val(c1) = val(c2): no recognized builtin name.
  auto rule = rules::Rule::Create(rules::PropEqProp("c1", "c2"),
                                  rules::ValEqVal("c1", "c2"), "AdHoc");
  ASSERT_TRUE(rule.ok());
  GenericEvaluator generic(*rule, &index);
  SortStats stats = generic.MakeStats();
  stats.Add(0);
  stats.Add(2);
  stats.Add(4);
  ExpectCountsEqual(generic.CountsFromStats(stats), generic.Counts({0, 2, 4}),
                    "generic fallback");
}

TEST(SortStatsTest, SparseDenseTransitionsMatchScratchOracle) {
  // The memory-diet representations flip with occupancy: the member set
  // starts as a sorted id vector and densifies to a word-packed bitset at
  // ~1/32 occupancy (back below ~1/64), and per-property counts start as
  // sorted parallel arrays and densify once used properties reach |P|/2
  // (back below |P|/8). This drives a ramp-up/drain sequence sized so all
  // four representation states occur, checking every aggregate against the
  // scratch SubsetStats oracle at each step — the flips must be invisible.
  gen::RandomIndexSpec spec;
  spec.num_signatures = 200;
  spec.num_properties = 64;
  spec.density = 0.1;
  spec.max_count = 30;
  spec.seed = 21;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto cov = ClosedFormEvaluator::Cov(&index);
  SortStats stats = cov->MakeStats();
  std::vector<int> members;
  bool saw_member_rep[2] = {false, false};
  bool saw_count_rep[2] = {false, false};

  Rng rng(99);
  const int n = static_cast<int>(index.num_signatures());
  for (int step = 0; step < 700; ++step) {
    // Ramp up (mostly adds), then drain (mostly removes) so both densify
    // and re-sparsify thresholds are crossed, with jitter around them.
    const bool add =
        members.empty() ||
        (step < 350 ? !rng.Chance(0.25) : rng.Chance(0.25));
    if (add) {
      if (members.size() == static_cast<std::size_t>(n)) continue;
      int sig;
      do {
        sig = static_cast<int>(rng.Below(n));
      } while (std::find(members.begin(), members.end(), sig) !=
               members.end());
      stats.Add(sig);
      members.push_back(sig);
    } else {
      const std::size_t at = rng.Below(members.size());
      stats.Remove(members[at]);
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(at));
    }
    saw_member_rep[stats.members().dense() ? 1 : 0] = true;
    saw_count_rep[stats.counts_dense() ? 1 : 0] = true;

    const SubsetStats scratch = SubsetStats::Compute(index, members);
    ASSERT_TRUE(stats.subjects() == scratch.subjects) << "step " << step;
    ASSERT_TRUE(stats.support_sum() == scratch.support_sum)
        << "step " << step;
    ASSERT_EQ(stats.used_properties(), scratch.used_properties)
        << "step " << step;
    for (std::size_t p = 0; p < index.num_properties(); ++p) {
      ASSERT_TRUE(BigCount{stats.property_count(p)} ==
                  scratch.property_count[p])
          << "step " << step << " property " << p;
    }
    std::vector<int> sorted = members;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(stats.members().ToVector(), sorted) << "step " << step;
    ExpectCountsEqual(cov->CountsFromStats(stats), cov->Counts(members),
                      "transition step " + std::to_string(step));
  }
  // The sequence must actually have exercised every representation, or the
  // oracle comparison above proves nothing about the flips.
  EXPECT_TRUE(saw_member_rep[0] && saw_member_rep[1])
      << "member set never flipped (sparse=" << saw_member_rep[0]
      << ", dense=" << saw_member_rep[1] << ")";
  EXPECT_TRUE(saw_count_rep[0] && saw_count_rep[1])
      << "count storage never flipped (sparse=" << saw_count_rep[0]
      << ", dense=" << saw_count_rep[1] << ")";
}

TEST(SortStatsTest, CompareSigmaIsExact) {
  SigmaCounts a{9, 10};
  SigmaCounts b{90, 100};
  EXPECT_EQ(CompareSigma(a, b), 0);
  SigmaCounts c{91, 100};
  EXPECT_EQ(CompareSigma(a, c), -1);
  EXPECT_EQ(CompareSigma(c, a), 1);
  // Vacuous counts read as exactly 1.
  SigmaCounts vacuous{0, 0};
  SigmaCounts one{5, 5};
  EXPECT_EQ(CompareSigma(vacuous, one), 0);
  EXPECT_EQ(CompareSigma(vacuous, a), 1);
  // Differences far below double resolution still order correctly.
  SigmaCounts x{1000000000000000000LL, 1000000000000000001LL};
  SigmaCounts y{999999999999999999LL, 1000000000000000000LL};
  EXPECT_EQ(CompareSigma(x, y), 1);
  EXPECT_EQ(CompareSigma(y, x), -1);
  // Counts whose cross-products would overflow __int128 (Sim totals grow
  // quadratically in subjects): m/(m+1) vs (m-1)/m at m ~ 1e21.
  const BigCount m = BigCount{1000000000000000000LL} * 1000;
  SigmaCounts big_hi{m, m + 1};
  SigmaCounts big_lo{m - 1, m};
  EXPECT_EQ(CompareSigma(big_hi, big_lo), 1);
  EXPECT_EQ(CompareSigma(big_lo, big_hi), -1);
  EXPECT_EQ(CompareSigma(big_hi, big_hi), 0);
  EXPECT_EQ(CompareSigma(vacuous, big_hi), 1);
}

}  // namespace
}  // namespace rdfsr::eval
