// Custom structuredness rules via the Section 3 language.
//
// The framework's point is that "structuredness" is in the eye of the
// beholder: this example defines three custom measures over the synthetic
// DBpedia Persons dataset with the text syntax —
//   * Cov restricted to the birth* properties,
//   * "if a subject has any death fact it has both",
//   * a strictness measure penalizing subjects missing a description —
// evaluates them, and refines against the second one.

#include <iostream>

#include "core/solver.h"
#include "eval/evaluator.h"
#include "gen/persons.h"
#include "rules/parser.h"
#include "rules/printer.h"

namespace {

void Measure(const char* label, const char* rule_text,
             const rdfsr::schema::SignatureIndex& index) {
  auto rule = rdfsr::rules::ParseRule(rule_text, label);
  if (!rule.ok()) {
    std::cerr << "rule error: " << rule.status().ToString() << "\n";
    return;
  }
  auto evaluator = rdfsr::eval::MakeEvaluator(*rule, &index);
  std::cout << "\n" << label << ":\n  " << rdfsr::rules::ToString(*rule)
            << "\n  sigma = " << evaluator->SigmaAll() << "\n";
}

}  // namespace

int main() {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  gen::PersonsConfig config;
  config.num_subjects = 2000;
  const schema::SignatureIndex index = gen::GeneratePersons(config);
  std::cout << "synthetic DBpedia Persons: " << index.total_subjects()
            << " subjects, " << index.num_signatures() << " signatures\n";

  // 1. Coverage over the birth columns only: ignore everything else by
  //    restricting the antecedent (the Section 3.2 "ignore a column" trick,
  //    inverted: keep only two columns).
  Measure("birth-coverage",
          "c = c && (prop(c) = birthDate || prop(c) = birthPlace) -> "
          "val(c) = 1",
          index);

  // 2. Death facts come in pairs: for a random subject and the two death
  //    columns, having one implies having the other.
  Measure("death-pairing",
          "subj(c1) = subj(c2) && prop(c1) = deathPlace && "
          "prop(c2) = deathDate && (val(c1) = 1 || val(c2) = 1) -> "
          "val(c1) = 1 && val(c2) = 1",
          index);

  // 3. Documentation discipline: every subject should carry a description.
  Measure("has-description",
          "subj(c1) = subj(c2) && prop(c1) = description -> val(c1) = 1",
          index);

  // Refine against the death-pairing rule: Section 7.1.3 predicts a perfect
  // (theta = 1) split with three sorts.
  auto rule = rules::ParseRule(
      "subj(c1) = subj(c2) && prop(c1) = deathPlace && "
      "prop(c2) = deathDate && (val(c1) = 1 || val(c2) = 1) -> "
      "val(c1) = 1 && val(c2) = 1",
      "death-pairing");
  auto evaluator = eval::MakeEvaluator(*rule, &index);
  core::RefinementSolver solver(evaluator.get());
  auto lowest = solver.FindLowestK(Rational(1), /*max_k=*/4);
  if (lowest.ok()) {
    std::cout << "\nlowest k with sigma = 1.0 under death-pairing: "
              << lowest->k << "\n"
              << lowest->refinement.Summary(index) << "\n";
  } else {
    std::cout << "\nno perfect split found: " << lowest.status().ToString()
              << "\n";
  }
  return 0;
}
