// Custom structuredness rules via the Section 3 language.
//
// The framework's point is that "structuredness" is in the eye of the
// beholder: this example defines three custom measures over the synthetic
// DBpedia Persons dataset with the text syntax —
//   * Cov restricted to the birth* properties,
//   * "if a subject has any death fact it has both",
//   * a strictness measure penalizing subjects missing a description —
// evaluates them, and refines against the second one.

#include <iostream>

#include "api/rdfsr.h"
#include "gen/persons.h"

namespace {

void Measure(const char* label, const char* rule_text,
             const rdfsr::api::Dataset& dataset) {
  auto analysis = dataset.Analyze(rule_text);
  if (!analysis.ok()) {
    std::cerr << "rule error: " << analysis.status().ToString() << "\n";
    return;
  }
  std::cout << "\n" << label << ":\n  " << analysis->RuleText()
            << "\n  sigma = " << analysis->Sigma() << "\n";
}

}  // namespace

int main() {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  gen::PersonsConfig config;
  config.num_subjects = 2000;
  const api::Dataset dataset =
      api::Dataset::FromIndex(gen::GeneratePersons(config));
  std::cout << "synthetic DBpedia Persons: " << dataset.Describe() << "\n";

  // 1. Coverage over the birth columns only: ignore everything else by
  //    restricting the antecedent (the Section 3.2 "ignore a column" trick,
  //    inverted: keep only two columns).
  Measure("birth-coverage",
          "c = c && (prop(c) = birthDate || prop(c) = birthPlace) -> "
          "val(c) = 1",
          dataset);

  // 2. Death facts come in pairs: for a random subject and the two death
  //    columns, having one implies having the other.
  const char* death_pairing =
      "subj(c1) = subj(c2) && prop(c1) = deathPlace && "
      "prop(c2) = deathDate && (val(c1) = 1 || val(c2) = 1) -> "
      "val(c1) = 1 && val(c2) = 1";
  Measure("death-pairing", death_pairing, dataset);

  // 3. Documentation discipline: every subject should carry a description.
  Measure("has-description",
          "subj(c1) = subj(c2) && prop(c1) = description -> val(c1) = 1",
          dataset);

  // Refine against the death-pairing rule: Section 7.1.3 predicts a perfect
  // (theta = 1) split with three sorts.
  auto analysis = dataset.Analyze(death_pairing);
  auto lowest = analysis->LowestK(Rational(1), /*max_k=*/4);
  if (lowest.ok()) {
    std::cout << "\nlowest k with sigma = 1.0 under death-pairing: "
              << lowest->num_sorts() << "\n"
              << analysis->Summary(*lowest) << "\n";
  } else {
    std::cout << "\nno perfect split found: " << lowest.status().ToString()
              << "\n";
  }
  return 0;
}
