// Dependency exploration: characterize a dataset with sigma_Dep/sigma_SymDep.
//
// Section 7.1.3 uses the dependency functions not for refinement but for
// understanding: the Dep matrix over the date/place properties reveals that
// deathPlace is the "hardest" fact (knowing it implies knowing the rest),
// and the SymDep ranking reveals which property pairs travel together. This
// example reproduces that workflow on the synthetic DBpedia Persons twin.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "api/rdfsr.h"
#include "gen/persons.h"
#include "util/table.h"

namespace {

// sigma of a builtin pair family ("dep" / "symdep") over the whole dataset.
double PairSigma(const rdfsr::api::Dataset& dataset, const std::string& family,
                 const std::string& p1, const std::string& p2) {
  return dataset.Analyze(family + ":" + p1 + "," + p2)->Sigma();
}

}  // namespace

int main() {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  gen::PersonsConfig config;
  config.num_subjects = 20000;
  const api::Dataset dataset =
      api::Dataset::FromIndex(gen::GeneratePersons(config));

  // Dep matrix over the four date/place properties (paper Table 1).
  const char* props[] = {"deathPlace", "birthPlace", "deathDate", "birthDate"};
  TextTable dep({"Dep[p1,p2]", "deathPlace", "birthPlace", "deathDate",
                 "birthDate"});
  for (const char* p1 : props) {
    std::vector<std::string> row = {p1};
    for (const char* p2 : props) {
      row.push_back(FormatDouble(PairSigma(dataset, "dep", p1, p2)));
    }
    dep.AddRow(row);
  }
  std::cout << "Dep matrix (row = given, column = implied):\n"
            << dep.ToString();

  // Which property is "hardest" (its row minimum is highest)?
  std::string hardest;
  double best_rowmin = -1;
  for (const char* p1 : props) {
    double rowmin = 1.0;
    for (const char* p2 : props) {
      rowmin = std::min(rowmin, PairSigma(dataset, "dep", p1, p2));
    }
    if (rowmin > best_rowmin) {
      best_rowmin = rowmin;
      hardest = p1;
    }
  }
  std::cout << "\nhardest-to-acquire fact: " << hardest
            << " (knowing it implies the others with probability >= "
            << FormatDouble(best_rowmin) << ")\n";

  // SymDep ranking over all pairs (paper Table 2).
  struct Pair {
    std::string p1, p2;
    double value;
  };
  const std::vector<std::string>& names = dataset.property_names();
  std::vector<Pair> pairs;
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      pairs.push_back(
          {names[i], names[j], PairSigma(dataset, "symdep", names[i], names[j])});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.value > b.value; });
  std::cout << "\nmost correlated property pairs:\n";
  for (std::size_t i = 0; i < 3 && i < pairs.size(); ++i) {
    std::cout << "  " << pairs[i].p1 << " ~ " << pairs[i].p2 << "  SymDep = "
              << FormatDouble(pairs[i].value) << "\n";
  }
  std::cout << "least correlated property pairs:\n";
  for (std::size_t i = pairs.size() >= 3 ? pairs.size() - 3 : 0;
       i < pairs.size(); ++i) {
    std::cout << "  " << pairs[i].p1 << " ~ " << pairs[i].p2 << "  SymDep = "
              << FormatDouble(pairs[i].value) << "\n";
  }
  return 0;
}
