// Dependency exploration: characterize a dataset with sigma_Dep/sigma_SymDep.
//
// Section 7.1.3 uses the dependency functions not for refinement but for
// understanding: the Dep matrix over the date/place properties reveals that
// deathPlace is the "hardest" fact (knowing it implies knowing the rest),
// and the SymDep ranking reveals which property pairs travel together. This
// example reproduces that workflow on the synthetic DBpedia Persons twin.

#include <algorithm>
#include <iostream>
#include <vector>

#include "eval/closed_form.h"
#include "gen/persons.h"
#include "util/table.h"

int main() {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  gen::PersonsConfig config;
  config.num_subjects = 20000;
  const schema::SignatureIndex index = gen::GeneratePersons(config);
  const std::vector<int> all = eval::AllSignatures(index);

  // Dep matrix over the four date/place properties (paper Table 1).
  const char* props[] = {"deathPlace", "birthPlace", "deathDate", "birthDate"};
  TextTable dep({"Dep[p1,p2]", "deathPlace", "birthPlace", "deathDate",
                 "birthDate"});
  for (const char* p1 : props) {
    std::vector<std::string> row = {p1};
    for (const char* p2 : props) {
      row.push_back(FormatDouble(eval::DepCounts(index, all, p1, p2).Value()));
    }
    dep.AddRow(row);
  }
  std::cout << "Dep matrix (row = given, column = implied):\n"
            << dep.ToString();

  // Which property is "hardest" (its row minimum is highest)?
  std::string hardest;
  double best_rowmin = -1;
  for (const char* p1 : props) {
    double rowmin = 1.0;
    for (const char* p2 : props) {
      rowmin = std::min(rowmin,
                        eval::DepCounts(index, all, p1, p2).Value());
    }
    if (rowmin > best_rowmin) {
      best_rowmin = rowmin;
      hardest = p1;
    }
  }
  std::cout << "\nhardest-to-acquire fact: " << hardest
            << " (knowing it implies the others with probability >= "
            << FormatDouble(best_rowmin) << ")\n";

  // SymDep ranking over all pairs (paper Table 2).
  struct Pair {
    std::string p1, p2;
    double value;
  };
  std::vector<Pair> pairs;
  for (std::size_t i = 0; i < index.num_properties(); ++i) {
    for (std::size_t j = i + 1; j < index.num_properties(); ++j) {
      pairs.push_back({index.property_name(i), index.property_name(j),
                       eval::SymDepCounts(index, all, index.property_name(i),
                                          index.property_name(j))
                           .Value()});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.value > b.value; });
  std::cout << "\nmost correlated property pairs:\n";
  for (std::size_t i = 0; i < 3 && i < pairs.size(); ++i) {
    std::cout << "  " << pairs[i].p1 << " ~ " << pairs[i].p2 << "  SymDep = "
              << FormatDouble(pairs[i].value) << "\n";
  }
  std::cout << "least correlated property pairs:\n";
  for (std::size_t i = pairs.size() >= 3 ? pairs.size() - 3 : 0;
       i < pairs.size(); ++i) {
    std::cout << "  " << pairs[i].p1 << " ~ " << pairs[i].p2 << "  SymDep = "
              << FormatDouble(pairs[i].value) << "\n";
  }
  return 0;
}
