// Schema discovery: recover hidden sorts from a mixed dataset.
//
// Mirrors Section 7.4: two YAGO-style explicit sorts (drug companies and
// sultans) are merged into one dataset with shared RDF-plumbing properties;
// a k = 2 highest-theta Cov refinement rediscovers the split, and ignoring
// the plumbing properties makes the recovery cleaner.

#include <iostream>
#include <string>

#include "api/rdfsr.h"
#include "gen/mixed.h"

namespace {

using namespace rdfsr;  // NOLINT(build/namespaces)

void Discover(const char* label, const gen::MixedDataset& truth,
              const api::Dataset& dataset, const std::string& rule_spec) {
  auto analysis = dataset.Analyze(rule_spec);
  if (!analysis.ok()) {
    std::cerr << "rule error: " << analysis.status().ToString() << "\n";
    return;
  }
  auto best = analysis->HighestTheta(2);
  std::cout << "\n=== " << label << " ===\n"
            << "best theta: " << best->theta.ToDouble() << "\n";
  for (std::size_t s = 0; s < best->num_sorts(); ++s) {
    int drugs = 0, sultans = 0;
    for (std::size_t i = 0; i < truth.subject_names.size(); ++i) {
      const int sig = dataset.SignatureOf(truth.subject_names[i]);
      bool in_sort = false;
      for (int member : best->sorts[s]) in_sort |= member == sig;
      if (!in_sort) continue;
      (truth.is_drug_company[i] ? drugs : sultans)++;
    }
    std::cout << "discovered sort " << (s + 1) << ": " << drugs
              << " drug companies + " << sultans << " sultans\n";
  }
}

}  // namespace

int main() {
  const gen::MixedDataset truth = gen::GenerateMixed();
  const api::Dataset dataset = api::Dataset::FromIndex(truth.index);
  std::cout << "mixed dataset: " << dataset.Describe() << "\n\n"
            << dataset.RenderView(/*max_rows=*/12);

  Discover("plain Cov", truth, dataset, "cov");

  // The Section 7.4 modified Cov: blind to the shared plumbing columns.
  std::string ignoring = "cov-ignoring:";
  for (std::size_t i = 0; i < truth.plumbing_properties.size(); ++i) {
    if (i > 0) ignoring += ",";
    ignoring += truth.plumbing_properties[i];
  }
  Discover("Cov ignoring RDF plumbing (type/sameAs/subClassOf/label)", truth,
           dataset, ignoring);

  std::cout << "\nSection 7.4's observation: the plumbing-blind rule "
               "separates the two populations more cleanly, because shared "
               "administrative properties are noise for sort discovery.\n";
  return 0;
}
