// Schema discovery: recover hidden sorts from a mixed dataset.
//
// Mirrors Section 7.4: two YAGO-style explicit sorts (drug companies and
// sultans) are merged into one dataset with shared RDF-plumbing properties;
// a k = 2 highest-theta Cov refinement rediscovers the split, and ignoring
// the plumbing properties makes the recovery cleaner.

#include <iostream>

#include "core/solver.h"
#include "eval/evaluator.h"
#include "gen/mixed.h"
#include "schema/ascii_view.h"

namespace {

using namespace rdfsr;  // NOLINT(build/namespaces)

void Discover(const char* label, const gen::MixedDataset& dataset,
              eval::Evaluator* evaluator) {
  core::RefinementSolver solver(evaluator);
  const core::HighestThetaResult best = solver.FindHighestTheta(2);
  std::cout << "\n=== " << label << " ===\n"
            << "best theta: " << best.theta.ToDouble() << "\n";
  for (std::size_t s = 0; s < best.refinement.num_sorts(); ++s) {
    int drugs = 0, sultans = 0;
    for (std::size_t i = 0; i < dataset.subject_names.size(); ++i) {
      const int sig =
          dataset.index.FindSubjectSignature(dataset.subject_names[i]);
      bool in_sort = false;
      for (int member : best.refinement.sorts[s]) in_sort |= member == sig;
      if (!in_sort) continue;
      (dataset.is_drug_company[i] ? drugs : sultans)++;
    }
    std::cout << "discovered sort " << (s + 1) << ": " << drugs
              << " drug companies + " << sultans << " sultans\n";
  }
}

}  // namespace

int main() {
  const gen::MixedDataset dataset = gen::GenerateMixed();
  std::cout << "mixed dataset: " << dataset.index.total_subjects()
            << " subjects, " << dataset.index.num_signatures()
            << " signatures, " << dataset.index.num_properties()
            << " properties\n\n";
  schema::AsciiViewOptions view;
  view.max_rows = 12;
  std::cout << schema::RenderSignatureView(dataset.index, view);

  auto plain = eval::ClosedFormEvaluator::Cov(&dataset.index);
  Discover("plain Cov", dataset, plain.get());

  auto modified = eval::ClosedFormEvaluator::CovIgnoring(
      &dataset.index, dataset.plumbing_properties);
  Discover("Cov ignoring RDF plumbing (type/sameAs/subClassOf/label)",
           dataset, modified.get());

  std::cout << "\nSection 7.4's observation: the plumbing-blind rule "
               "separates the two populations more cleanly, because shared "
               "administrative properties are noise for sort discovery.\n";
  return 0;
}
