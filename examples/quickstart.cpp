// Quickstart: load RDF, measure structuredness, refine the sort.
//
// The full paper pipeline through the façade, on a ten-line inline dataset:
// load + slice the <http://x/Person> sort, evaluate sigma_Cov and sigma_Sim,
// and search for the best 2-sort refinement.

#include <iostream>

#include "api/rdfsr.h"

int main() {
  using namespace rdfsr;  // NOLINT(build/namespaces)

  // In a real application: api::Dataset::FromNTriplesFile(path, ...).
  const char* text = R"(
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/alice> <http://x/name> "Alice" .
<http://x/alice> <http://x/email> "alice@example.org" .
<http://x/alice> <http://x/birthDate> "1990-01-01" .
<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/bob> <http://x/name> "Bob" .
<http://x/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/carol> <http://x/name> "Carol" .
<http://x/carol> <http://x/email> "carol@example.org" .
<http://x/carol> <http://x/birthDate> "1985-05-05" .
<http://x/dave> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/dave> <http://x/name> "Dave" .
)";

  // 1. Parse and slice the Person sort (D_t of the paper, Section 2.1).
  auto people = api::Dataset::FromNTriplesText(text, {.sort = "http://x/Person"});
  if (!people.ok()) {
    std::cerr << "load error: " << people.status().ToString() << "\n";
    return 1;
  }
  std::cout << "dataset: " << people->Describe() << "\n\n"
            << people->RenderView() << "\n";

  // 2. Structuredness under two builtin rules (Section 2.2).
  auto cov = people->Analyze("cov");
  auto sim = people->Analyze("sim");
  std::cout << "rule Cov: " << cov->RuleText() << "\n"
            << "sigma_Cov = " << cov->Sigma()
            << "  sigma_Sim = " << sim->Sigma() << "\n";

  // 3. Best 2-sort refinement under Cov (highest-theta search, Section 7).
  auto best = cov->HighestTheta(2);
  std::cout << "\nbest 2-sort refinement reaches sigma_Cov >= "
            << best->theta.ToDouble() << ":\n" << cov->Render(*best);
  return 0;
}
