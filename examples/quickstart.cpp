// Quickstart: load RDF, measure structuredness, refine the sort.
//
// This walks the full pipeline on a ten-line inline dataset:
//   1. parse N-Triples text into a graph,
//   2. slice out the subjects declared of sort <http://x/Person>,
//   3. build the property-structure view and its signature index,
//   4. evaluate sigma_Cov and sigma_Sim,
//   5. search for the best 2-sort refinement and print it.

#include <iostream>

#include "core/solver.h"
#include "eval/evaluator.h"
#include "rdf/ntriples.h"
#include "rules/builtins.h"
#include "rules/printer.h"
#include "schema/ascii_view.h"
#include "schema/property_matrix.h"
#include "schema/signature_index.h"

int main() {
  using namespace rdfsr;  // NOLINT(build/namespaces)

  // 1. Parse. In a real application use rdf::ParseNTriplesFile(path).
  const char* text = R"(
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/alice> <http://x/name> "Alice" .
<http://x/alice> <http://x/email> "alice@example.org" .
<http://x/alice> <http://x/birthDate> "1990-01-01" .
<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/bob> <http://x/name> "Bob" .
<http://x/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/carol> <http://x/name> "Carol" .
<http://x/carol> <http://x/email> "carol@example.org" .
<http://x/carol> <http://x/birthDate> "1985-05-05" .
<http://x/dave> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/dave> <http://x/name> "Dave" .
)";
  auto graph = rdf::ParseNTriples(text);
  if (!graph.ok()) {
    std::cerr << "parse error: " << graph.status().ToString() << "\n";
    return 1;
  }
  std::cout << "parsed " << graph->size() << " triples\n";

  // 2. Slice the Person sort (D_t of the paper, Section 2.1).
  const rdf::Graph persons = graph->SortSlice("http://x/Person");

  // 3. Property-structure view M(D) and the signature index.
  const schema::PropertyMatrix matrix =
      schema::PropertyMatrix::FromGraph(persons);
  const schema::SignatureIndex index =
      schema::SignatureIndex::FromMatrix(matrix, /*keep_subject_names=*/true);
  std::cout << "\n" << schema::RenderSignatureView(index) << "\n";

  // 4. Structuredness under two builtin rules.
  auto cov = eval::MakeEvaluator(rules::CovRule(), &index);
  auto sim = eval::MakeEvaluator(rules::SimRule(), &index);
  std::cout << "rule Cov: " << rules::ToString(cov->rule()) << "\n";
  std::cout << "sigma_Cov = " << cov->SigmaAll()
            << "  sigma_Sim = " << sim->SigmaAll() << "\n";

  // 5. Best 2-sort refinement under Cov (highest-theta search).
  core::RefinementSolver solver(cov.get());
  const core::HighestThetaResult best = solver.FindHighestTheta(2);
  std::cout << "\nbest 2-sort refinement reaches sigma_Cov >= "
            << best.theta.ToDouble() << ":\n";
  std::cout << schema::RenderRefinementView(index, best.refinement.sorts);
  return 0;
}
