// refine_tool: minimal command-line sort refinement for N-Triples files.
//
// Usage:
//   refine_tool <file.nt> <sort-iri> [rule-spec] [k]
//
// The rule spec is anything api::ResolveRuleSpec accepts: "cov" (default),
// "sim", "dep:p1,p2", "symdep:p1,p2", or free text in the Section 3 rule
// language, e.g.:
//   refine_tool data.nt http://x/Person 'c = c -> val(c) = 1' 2
//
// This is the single-file illustration of the façade; the installed `rdfsr`
// CLI (tools/rdfsr_cli.cc) is the full-featured driver with lowest-k search,
// schema reports, and solver knobs.

#include <cstdlib>
#include <iostream>
#include <string>

#include "api/rdfsr.h"

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  if (argc < 3) {
    std::cerr << "usage: " << argv[0] << " <file.nt> <sort-iri> [rule] [k]\n";
    return 2;
  }
  const std::string rule_spec = argc > 3 ? argv[3] : "cov";
  const int k = argc > 4 ? std::atoi(argv[4]) : 2;

  auto dataset =
      api::Dataset::FromNTriplesFile(argv[1], {.sort = argv[2]});
  if (!dataset.ok()) {
    std::cerr << "error: " << dataset.status().ToString() << "\n";
    return 1;
  }
  std::cout << "dataset: " << dataset->Describe() << "\n";

  auto analysis = dataset->Analyze(rule_spec);
  if (!analysis.ok()) {
    std::cerr << "error: " << analysis.status().ToString() << "\n";
    return 1;
  }
  std::cout << "rule: " << analysis->RuleText() << "\n"
            << "sigma over the whole sort: " << analysis->Sigma() << "\n\n";

  auto best = analysis->HighestTheta(k);
  if (!best.ok()) {
    std::cerr << "error: " << best.status().ToString() << "\n";
    return 1;
  }
  std::cout << "highest theta with k = " << k << ": " << best->theta.ToDouble()
            << (best->optimal ? " (ceiling proven)" : "") << "\n\n"
            << analysis->Render(*best) << "\n"
            << analysis->Report(*best);
  return 0;
}
