// refine_tool: command-line sort refinement for N-Triples files.
//
// Usage:
//   refine_tool <file.nt> <sort-iri> [options]
// Options:
//   --rule cov | sim | dep:<p1>,<p2> | symdep:<p1>,<p2> | <rule text>
//   --k <n>          fixed number of implicit sorts (highest-theta search)
//   --theta <x>      fixed threshold (lowest-k search)
//   --report         print the per-sort schema report
//
// Exactly one of --k / --theta selects the search mode (default: --k 2).
// With `--rule` free text, the Section 3 language is parsed, e.g.:
//   refine_tool data.nt http://x/Person --rule 'c = c -> val(c) = 1' --k 2

#include <cstring>
#include <iostream>
#include <string>

#include "core/report.h"
#include "core/solver.h"
#include "eval/evaluator.h"
#include "rdf/ntriples.h"
#include "rules/builtins.h"
#include "rules/parser.h"
#include "rules/printer.h"
#include "schema/ascii_view.h"
#include "schema/property_matrix.h"
#include "schema/signature_index.h"
#include "util/table.h"

namespace {

using namespace rdfsr;  // NOLINT(build/namespaces)

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

Result<rules::Rule> ResolveRule(const std::string& spec) {
  if (spec == "cov") return rules::CovRule();
  if (spec == "sim") return rules::SimRule();
  auto parse_pair = [&](const std::string& body,
                        std::string* p1, std::string* p2) {
    const std::size_t comma = body.find(',');
    if (comma == std::string::npos) return false;
    *p1 = body.substr(0, comma);
    *p2 = body.substr(comma + 1);
    return !p1->empty() && !p2->empty();
  };
  std::string p1, p2;
  if (spec.rfind("dep:", 0) == 0 && parse_pair(spec.substr(4), &p1, &p2)) {
    return rules::DepRule(p1, p2);
  }
  if (spec.rfind("symdep:", 0) == 0 && parse_pair(spec.substr(7), &p1, &p2)) {
    return rules::SymDepRule(p1, p2);
  }
  return rules::ParseRule(spec, "user");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " <file.nt> <sort-iri> [--rule R] [--k N | --theta X] "
                 "[--report]\n";
    return 2;
  }
  const std::string path = argv[1];
  const std::string sort_iri = argv[2];
  std::string rule_spec = "cov";
  int k = 2;
  double theta = -1.0;
  bool report = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rule") == 0 && i + 1 < argc) {
      rule_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
      k = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--theta") == 0 && i + 1 < argc) {
      theta = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report = true;
    } else {
      return Fail(std::string("unknown option: ") + argv[i]);
    }
  }

  auto graph = rdf::ParseNTriplesFile(path);
  if (!graph.ok()) return Fail(graph.status().ToString());
  const rdf::Graph slice = graph->SortSlice(sort_iri);
  if (slice.empty()) {
    return Fail("no subjects of sort <" + sort_iri + "> in " + path);
  }
  const schema::SignatureIndex index = schema::SignatureIndex::FromMatrix(
      schema::PropertyMatrix::FromGraph(slice), true);
  std::cout << "dataset: " << FormatCount(index.total_subjects())
            << " subjects, " << index.num_properties() << " properties, "
            << index.num_signatures() << " signatures\n";

  auto rule = ResolveRule(rule_spec);
  if (!rule.ok()) return Fail(rule.status().ToString());
  auto evaluator = eval::MakeEvaluator(*rule, &index);
  std::cout << "rule: " << rules::ToString(*rule) << "\n"
            << "sigma over the whole sort: "
            << FormatDouble(evaluator->SigmaAll(), 4) << "\n\n";

  core::RefinementSolver solver(evaluator.get());
  core::SortRefinement refinement;
  if (theta >= 0.0) {
    auto result = solver.FindLowestK(Rational::FromDouble(theta));
    if (!result.ok()) return Fail(result.status().ToString());
    std::cout << "lowest k with sigma >= " << theta << ": " << result->k
              << (result->proven_minimal ? " (proven minimal)" : "") << "\n";
    refinement = std::move(result->refinement);
  } else {
    if (k <= 0) return Fail("--k must be positive");
    const core::HighestThetaResult best = solver.FindHighestTheta(k);
    std::cout << "highest theta with k = " << k << ": "
              << FormatDouble(best.theta.ToDouble(), 4)
              << (best.ceiling_proven ? " (ceiling proven)" : "") << "\n";
    refinement = best.refinement;
  }

  std::cout << "\n" << schema::RenderRefinementView(index, refinement.sorts);
  if (report) {
    std::cout << "\n" << core::RenderReport(index, refinement);
  }
  return 0;
}
