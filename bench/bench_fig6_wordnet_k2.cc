// Figure 6: WordNet Nouns split into k=2 implicit sorts under (a) Cov and
// (b) Sim. Headlines: the Cov split barely improves structuredness
// (0.44 -> 0.55/0.56; k=2 is not enough for this sort), the Sim split
// isolates a gloss-less sort at Sim 0.98 / 0.94.

#include <iostream>

#include "bench_util.h"
#include "gen/wordnet.h"
#include "schema/ascii_view.h"

namespace rdfsr {
namespace {

void RunCase(const char* label, const char* paper_line,
             const schema::SignatureIndex& index,
             std::unique_ptr<eval::Evaluator> evaluator) {
  std::cout << "\n--- " << label << " ---\npaper: " << paper_line << "\n";
  core::RefinementSolver solver(evaluator.get(), bench::BenchSolverOptions());
  const core::HighestThetaResult best = solver.FindHighestTheta(2);
  bench::Json().Record(
      "highest_theta", {{"case", label}, {"k", "2"}}, best.seconds,
      {{"theta", best.theta.ToDouble()},
       {"sigma_whole", evaluator->SigmaAll()},
       {"ceiling_proven", best.ceiling_proven ? 1.0 : 0.0}});
  std::cout << "whole dataset sigma = "
            << FormatDouble(evaluator->SigmaAll()) << "; measured theta = "
            << FormatDouble(best.theta.ToDouble()) << " ("
            << FormatDouble(best.seconds, 1) << "s, "
            << (best.ceiling_proven ? "ceiling proven" : "ceiling open")
            << ")\n";
  bench::PrintRefinementStats(index, best.refinement);
}

}  // namespace
}  // namespace rdfsr

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::InitHarness(argc, argv, "fig6_wordnet_k2");
  bench::Banner("Figure 6: WordNet Nouns, k = 2 highest-theta refinements",
                "Fig 6a (Cov: 0.44 -> 0.55/0.56, memberMeronymOf "
                "discriminates), Fig 6b (Sim: gloss-less sort, 0.98/0.94)");
  gen::WordnetConfig config;
  config.num_subjects = 3000;  // keep the Sim encoding within MIP budget
  const schema::SignatureIndex index = gen::GenerateWordnet(config);
  std::cout << "dataset: " << FormatCount(index.total_subjects())
            << " subjects, " << index.num_signatures() << " signatures\n";

  RunCase("(a) sigma_Cov",
          "left 14,938 subj / 35 sigs Cov 0.55; right 64,751 subj / 18 sigs "
          "Cov 0.56 — small improvement over 0.44",
          index, eval::ClosedFormEvaluator::Cov(&index));
  RunCase("(b) sigma_Sim",
          "left 7,311 subj / 13 sigs Sim 0.98 (no gloss); right 72,378 subj "
          "/ 40 sigs Sim 0.94",
          index, eval::ClosedFormEvaluator::Sim(&index));
  return 0;
}
