// bench_solver — end-to-end FindHighestTheta / FindLowestK throughput:
// instance-reuse exact path vs rebuild-per-instance baseline.
//
// The Section 7 searches drive the Section 6 ILP through many closely
// related decision instances (a theta grid, a k ladder). With
// SolverOptions::reuse_instances the solver keeps one encoding per k and
// reweights its threshold rows per theta, runs the theta-independent
// heuristics (greedy max-min, fixed-k agglomerative) once per k, and caches
// per-sort counts so re-validation per instance is a handful of exact integer
// comparisons. The baseline (reuse off) rebuilds the encoding and re-runs the
// ladder for every instance — what the solver did before the reuse rewrite.
//
// Outputs must be bit-identical between the two modes (the heuristics are
// deterministic and a reweighted instance equals a fresh build; see
// tests/solver_reuse_test.cc for the small regression lock) and the binary
// exits non-zero on any divergence. CI runs the small default and uploads
// bench_solver.json; there is no perf gating, the records track the
// trajectory.
//
// Configs:
//   highest_theta   default solver (heuristic ladder first) on a clustered
//                   index large enough that the MIP row ceiling gates the
//                   exact solver — measures heuristic + validation reuse
//                   across the theta grid (the rebuild side re-runs greedy
//                   and fixed-k agglomerative per instance)
//   highest_theta_pure_exact
//                   greedy_first = false on a small index, so every grid
//                   instance is settled by the MIP over the (reweighted vs
//                   rebuilt) encoding
//   encode_only     no solving at all: one instance reweighted across the
//                   whole theta grid vs BuildRefinementIlp per grid point —
//                   isolates the tentpole O(k|P|n) skeleton-rebuild saving
//   exact_sparse_vs_dense
//                   pure-exact FindHighestTheta at full size: the
//                   LU-factorized warm-started engine vs the dense-inverse
//                   cold-start baseline (wall-clock capped; speedup is a
//                   lower bound when the cap trips)
//   exact_frontier  one stock-options Exists(k = 2, theta = 3/4) on a large
//                   random index — tracks the max_mip_rows default against
//                   the measured solvable frontier
//   lowest_k        default solver, k ladder at theta = 9/10
//
// Usage: bench_solver [--json <path>] [--signatures N] [--exact-signatures N]
//                     [--ladder-signatures N] [--frontier-signatures N]

#include <cstring>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/solver.h"
#include "eval/evaluator.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rdfsr::bench {
namespace {

/// Clustered index: `families` property blocks of `block` columns plus one
/// shared column; the first signature of each family takes its whole block
/// (so every property is used), later ones draw ~80% of it. Family merges
/// stay above moderate thresholds, so the theta grid has real depth to climb.
schema::SignatureIndex MakeClusteredIndex(int n, std::uint64_t seed,
                                          int families = 8, int block = 8) {
  RDFSR_CHECK_GE(n, families);
  const int num_props = 1 + families * block;
  Rng rng(seed);
  std::set<std::vector<int>> seen;
  std::vector<schema::Signature> sigs;
  int stall = 0;
  while (static_cast<int>(sigs.size()) < n) {
    const int family = static_cast<int>(sigs.size()) % families;
    const bool full = static_cast<int>(sigs.size()) < families;
    std::vector<int> support{0};
    const int base = 1 + family * block;
    for (int p = 0; p < block; ++p) {
      if (full || rng.Chance(0.8)) support.push_back(base + p);
    }
    if (!seen.insert(support).second) {
      RDFSR_CHECK_LT(++stall, 1000000) << "cannot draw distinct supports";
      continue;
    }
    sigs.emplace_back(std::move(support), rng.Range(1, 20));
  }
  std::vector<std::string> names;
  for (int p = 0; p < num_props; ++p) {
    names.push_back("http://bench/p" + std::to_string(p));
  }
  return schema::SignatureIndex::FromSignatures(std::move(names),
                                                std::move(sigs));
}

core::SolverOptions Options(bool reuse, bool greedy_first) {
  core::SolverOptions options = BenchSolverOptions();
  options.reuse_instances = reuse;
  options.greedy_first = greedy_first;
  // The searches meet at most a couple of undecidable instances; a tight MIP
  // budget keeps the (identical-in-both-modes) proof cost from drowning the
  // reuse-vs-rebuild difference this harness exists to measure. The budget
  // must be a NODE count, not wall clock: a wall-clock limit can trip in one
  // of the two timed runs but not the other under load, making the
  // bit-identity assertion flaky.
  options.mip.max_nodes = 50000;
  options.mip.time_limit_seconds = 300.0;
  // The heuristic-regime and ladder configs were designed against the old
  // 4000-row MIP gate; the sparse engine's raised default would un-gate the
  // clustered indexes' k=2/3 encodings and turn those configs into exact-solve
  // benchmarks. Pin the old ceiling here; the engine-measuring configs below
  // set their own.
  options.max_mip_rows = 4000;
  return options;
}

struct Measurement {
  double reuse_seconds = 0;
  double rebuild_seconds = 0;
  int instances = 0;
  std::string result;  // "theta=..." or "k=..."
  bool match = true;
  bool timed_out = false;  // deadline/limit cut: result is an incumbent
  /// Config-specific JSON metrics appended to the record (engine counters,
  /// speedup lower bounds, ...).
  std::vector<std::pair<std::string, double>> extra_metrics;
};

/// Simplex/B&B engine counters of one search, as JSON metrics.
std::vector<std::pair<std::string, double>> EngineMetrics(
    long long mip_nodes, const ilp::LpEngineStats& s) {
  return {{"mip_nodes", static_cast<double>(mip_nodes)},
          {"lp_pivots", static_cast<double>(s.pivots)},
          {"lp_refactorizations", static_cast<double>(s.refactorizations)},
          {"lp_basis_reuses", static_cast<double>(s.basis_reuses)},
          {"lp_basis_repairs", static_cast<double>(s.basis_repairs)},
          {"lp_max_eta_length", static_cast<double>(s.max_eta_length)}};
}

void Report(TextTable* table, bool* ok, const std::string& config,
            const std::string& rule, int n, const Measurement& m) {
  const auto fmt = [](double seconds) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(3) << seconds;
    return out.str();
  };
  const double ratio = m.rebuild_seconds / std::max(m.reuse_seconds, 1e-9);
  std::ostringstream speedup;
  speedup << std::fixed << std::setprecision(1) << ratio << "x";
  table->AddRow({config, rule, std::to_string(n), std::to_string(m.instances),
                 fmt(m.reuse_seconds), fmt(m.rebuild_seconds), speedup.str(),
                 m.result, m.match ? "yes" : "MISMATCH"});
  if (!m.match) {
    std::cerr << "FAIL: reuse and rebuild searches diverge for " << config
              << "/" << rule << " at n = " << n << "\n";
    *ok = false;
  }
  Json().Record(
      "solver/" + config + "/" + rule,
      {{"config", config}, {"rule", rule}, {"signatures", std::to_string(n)}},
      m.reuse_seconds, [&] {
        std::vector<std::pair<std::string, double>> metrics = {
            {"signatures", static_cast<double>(n)},
            {"instances", static_cast<double>(m.instances)},
            {"rebuild_seconds", m.rebuild_seconds},
            {"speedup_vs_rebuild", ratio},
            {"match", m.match ? 1.0 : 0.0}};
        metrics.insert(metrics.end(), m.extra_metrics.begin(),
                       m.extra_metrics.end());
        return metrics;
      }(),
      m.timed_out);
}

Measurement MeasureHighestTheta(const eval::Evaluator& evaluator, int k,
                                bool greedy_first, bool bisect = false) {
  Measurement m;
  core::SolverOptions reuse_options = Options(true, greedy_first);
  core::SolverOptions rebuild_options = Options(false, greedy_first);
  reuse_options.binary_theta_search = bisect;
  rebuild_options.binary_theta_search = bisect;
  core::RefinementSolver reused(&evaluator, reuse_options);
  core::RefinementSolver rebuilt(&evaluator, rebuild_options);
  WallTimer reuse_timer;
  const core::HighestThetaResult a = reused.FindHighestTheta(k);
  m.reuse_seconds = reuse_timer.Seconds();
  WallTimer rebuild_timer;
  const core::HighestThetaResult b = rebuilt.FindHighestTheta(k);
  m.rebuild_seconds = rebuild_timer.Seconds();
  m.instances = a.instances;
  m.result = "theta=" + a.theta.ToString();
  m.timed_out = a.timed_out || b.timed_out;
  m.match = a.theta == b.theta && a.instances == b.instances &&
            a.ceiling_proven == b.ceiling_proven &&
            RenderSorts(a.refinement) == RenderSorts(b.refinement);
  m.extra_metrics = EngineMetrics(a.mip_nodes, a.lp_stats);
  return m;
}

/// Engine head-to-head on a random index in pure-exact mode: the LU-factorized
/// warm-started default against the dense-inverse cold-start baseline (the
/// pre-rewrite engine: dense basis inverse, full Dantzig pricing,
/// most-fractional branching, no probing, no warm starts). Both sides share a
/// per-instance NODE budget so phase-transition grid points cannot churn
/// unboundedly; the dense side additionally gets a wall-clock cap because at
/// this size a full dense sweep is intractable (O(m^2) work per pivot, every
/// LP cold). When the cap trips, the recorded speedup is a lower bound and
/// the bit-identity check is skipped (the dense result is an incumbent).
Measurement MeasureSparseVsDense(const eval::Evaluator& evaluator, int k,
                                 double dense_cap_seconds) {
  Measurement m;
  core::SolverOptions sparse = Options(true, /*greedy_first=*/false);
  // This config measures the engine, not the row gate: admit the encoding.
  sparse.max_mip_rows = 1 << 30;
  sparse.warm_start = true;
  sparse.mip.max_nodes = 200;
  sparse.mip.time_limit_seconds = 1e9;
  core::SolverOptions dense = sparse;
  dense.warm_start = false;
  dense.mip.warm_start_lps = false;
  dense.mip.root_probing = false;
  dense.mip.branching = ilp::BranchingRule::kMostFractional;
  dense.mip.lp.basis_kind = ilp::BasisKind::kDenseInverse;
  dense.mip.lp.pricing = ilp::PricingRule::kDantzig;

  core::RefinementSolver fast(&evaluator, sparse);
  WallTimer sparse_timer;
  const core::HighestThetaResult a = fast.FindHighestTheta(k);
  m.reuse_seconds = sparse_timer.Seconds();

  core::RefinementSolver slow(&evaluator, dense);
  slow.set_deadline(util::Deadline::After(dense_cap_seconds));
  WallTimer dense_timer;
  const core::HighestThetaResult b = slow.FindHighestTheta(k);
  m.rebuild_seconds = dense_timer.Seconds();

  m.instances = a.instances;
  m.result = "theta=" + a.theta.ToString();
  m.timed_out = b.timed_out;
  // Decisions and the found theta must agree across backends; the witnesses
  // need not (degenerate optima admit several, and the engines pivot
  // differently). tests/warm_start_test.cc locks the same contract.
  m.match = b.timed_out || (a.theta == b.theta && a.instances == b.instances);
  m.extra_metrics = EngineMetrics(a.mip_nodes, a.lp_stats);
  m.extra_metrics.emplace_back("dense_capped", b.timed_out ? 1.0 : 0.0);
  m.extra_metrics.emplace_back(
      "speedup_vs_dense", m.rebuild_seconds / std::max(m.reuse_seconds, 1e-9));
  return m;
}

/// Exact-frontier probe: one Exists(k = 2, theta = 3/4) on a large random
/// index with STOCK solver options — the config that keeps the
/// SolverOptions::max_mip_rows default honest. The encoding must pass the
/// default gate and the decision must land inside the default MIP budget;
/// the record tracks rows, wall time, and engine counters.
void ReportFrontier(TextTable* table, int frontier_n) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = frontier_n;
  spec.num_properties = 10;
  spec.seed = 42;
  const schema::SignatureIndex index = gen::GenerateRandomIndex(spec);
  auto evaluator = eval::MakeEvaluator(rules::CovRule(), &index);
  const auto taus = eval::EnumerateTauCounts(evaluator->rule(), index);
  const auto shapes = core::AnalyzeTaus(taus, index);
  const std::size_t rows = core::RefinementIlpActiveRows(index, shapes, 2, {});

  core::SolverOptions options;  // stock defaults on purpose
  options.greedy_first = false;
  core::RefinementSolver solver(evaluator.get(), options);
  WallTimer timer;
  const core::DecisionResult r = solver.Exists(2, Rational(3, 4));
  const double seconds = timer.Seconds();
  const bool decided = r.decision != core::Decision::kUnknown;

  std::ostringstream secs;
  secs << std::fixed << std::setprecision(3) << seconds;
  table->AddRow({"exact_frontier", "Cov", std::to_string(frontier_n), "1",
                 secs.str(), "-", "-",
                 std::string(core::DecisionName(r.decision)) + " @" +
                     std::to_string(rows) + " rows",
                 decided ? "yes" : "undecided"});
  std::vector<std::pair<std::string, double>> metrics =
      EngineMetrics(r.mip_nodes, r.lp_stats);
  metrics.emplace_back("signatures", static_cast<double>(frontier_n));
  metrics.emplace_back("active_rows", static_cast<double>(rows));
  metrics.emplace_back("decided", decided ? 1.0 : 0.0);
  Json().Record("solver/exact_frontier/Cov",
                {{"config", "exact_frontier"},
                 {"rule", "Cov"},
                 {"signatures", std::to_string(frontier_n)}},
                seconds, metrics, /*timed_out=*/!decided);
}

Measurement MeasureEncodeOnly(const eval::Evaluator& evaluator, int k) {
  Measurement m;
  const schema::SignatureIndex& index = evaluator.index();
  const auto taus = eval::EnumerateTauCounts(evaluator.rule(), index);
  const auto shapes = core::AnalyzeTaus(taus, index);
  // The same grid FindHighestTheta would walk, from the dataset's sigma up.
  const eval::SigmaCounts all = evaluator.CountsAll();
  Rational sigma_all(1);
  if (all.total > 0) {
    sigma_all = Rational(static_cast<std::int64_t>(all.favorable),
                         static_cast<std::int64_t>(all.total));
  }
  const core::ThetaGrid grid = core::MakeThetaGrid(sigma_all, 0.01);
  m.instances = static_cast<int>(grid.last - grid.first + 1);

  WallTimer reuse_timer;
  core::RefinementIlpInstance instance(index, shapes, k, {});
  for (std::int64_t g = grid.first; g <= grid.last; ++g) {
    instance.Reweight(grid.Theta(g));
  }
  m.reuse_seconds = reuse_timer.Seconds();

  std::size_t rows = 0;
  WallTimer rebuild_timer;
  for (std::int64_t g = grid.first; g <= grid.last; ++g) {
    const core::IlpEncoding enc = core::BuildRefinementIlp(
        index, evaluator.rule(), taus, k, grid.Theta(g), {});
    rows = enc.model.num_constraints();
  }
  m.rebuild_seconds = rebuild_timer.Seconds();

  // Identity spot-check at the grid's ends and middle (a full per-point
  // comparison would itself cost a rebuild per point).
  for (std::int64_t g : {grid.first, (grid.first + grid.last) / 2, grid.last}) {
    instance.Reweight(grid.Theta(g));
    const core::IlpEncoding fresh = core::BuildRefinementIlp(
        index, evaluator.rule(), taus, k, grid.Theta(g), {});
    if (instance.model().ToString() != fresh.model.ToString()) m.match = false;
  }
  m.result = std::to_string(rows) + " rows";
  return m;
}

Measurement MeasureLowestK(const eval::Evaluator& evaluator, Rational theta) {
  Measurement m;
  core::RefinementSolver reused(&evaluator, Options(true, true));
  core::RefinementSolver rebuilt(&evaluator, Options(false, true));
  WallTimer reuse_timer;
  const auto a = reused.FindLowestK(theta);
  m.reuse_seconds = reuse_timer.Seconds();
  WallTimer rebuild_timer;
  const auto b = rebuilt.FindLowestK(theta);
  m.rebuild_seconds = rebuild_timer.Seconds();
  if (a.ok() != b.ok()) {
    m.match = false;
    m.result = "k=?";
    return m;
  }
  if (!a.ok()) {
    m.result = "none<=max_k";
    m.match = a.status().code() == b.status().code();
    return m;
  }
  m.instances = a->instances;
  m.result = "k=" + std::to_string(a->k);
  m.timed_out = a->timed_out || b->timed_out;
  m.match = a->k == b->k && a->instances == b->instances &&
            a->proven_minimal == b->proven_minimal &&
            RenderSorts(a->refinement) == RenderSorts(b->refinement);
  m.extra_metrics = EngineMetrics(a->mip_nodes, a->lp_stats);
  return m;
}

int Run(int n, int exact_n, int ladder_n, int frontier_n) {
  Banner("Refinement searches: instance-reuse exact path vs rebuild",
         "Sections 6-7; Figures 4-7 search modes");

  TextTable table({"config", "rule", "n", "instances", "reuse_s", "rebuild_s",
                   "speedup", "result", "identical"});
  bool ok = true;

  // Heuristic regime: at this size the encoding exceeds the MIP row ceiling,
  // so every instance is answered (or left open) by the ladder — the rebuild
  // side re-runs greedy and fixed-k agglomerative per grid point.
  const schema::SignatureIndex clustered = MakeClusteredIndex(n, 42);
  for (const auto& rule : {rules::CovRule(), rules::SimRule()}) {
    auto evaluator = eval::MakeEvaluator(rule, &clustered);
    Report(&table, &ok, "highest_theta", rule.name(), n,
           MeasureHighestTheta(*evaluator, 4, /*greedy_first=*/true));
  }
  {
    // Bisection meets many infeasible/undecided instances (the reason the
    // paper prefers the sequential scan), and every failing instance runs
    // the whole heuristic ladder — the regime where once-per-k greedy and
    // fixed-k reuse pays off.
    auto evaluator = eval::MakeEvaluator(rules::CovRule(), &clustered);
    Report(&table, &ok, "highest_theta_bisect", "Cov", n,
           MeasureHighestTheta(*evaluator, 4, /*greedy_first=*/true,
                               /*bisect=*/true));
  }
  {
    // Pure exact mode: every grid instance goes to the MIP, over the
    // reweighted vs rebuilt encoding.
    const schema::SignatureIndex small =
        MakeClusteredIndex(exact_n, 9, /*families=*/3, /*block=*/3);
    auto evaluator = eval::MakeEvaluator(rules::CovRule(), &small);
    Report(&table, &ok, "highest_theta_pure_exact", "Cov", exact_n,
           MeasureHighestTheta(*evaluator, 2, /*greedy_first=*/false));
  }
  {
    // Encoding in isolation: the tentpole skeleton-rebuild saving without
    // any solver time on either side.
    auto evaluator = eval::MakeEvaluator(rules::CovRule(), &clustered);
    Report(&table, &ok, "encode_only", "Cov", n,
           MeasureEncodeOnly(*evaluator, 4));
  }
  {
    // The sparse engine against the dense pre-rewrite baseline, pure exact
    // at full size — the ISSUE 9 headline number. ~90 s worst case for the
    // capped dense side.
    gen::RandomIndexSpec spec;
    spec.num_signatures = n;
    spec.num_properties = 10;
    spec.seed = 42;
    const schema::SignatureIndex random = gen::GenerateRandomIndex(spec);
    auto evaluator = eval::MakeEvaluator(rules::CovRule(), &random);
    Report(&table, &ok, "exact_sparse_vs_dense", "Cov", n,
           MeasureSparseVsDense(*evaluator, 2, /*dense_cap_seconds=*/90.0));
  }
  if (frontier_n > 0) ReportFrontier(&table, frontier_n);
  // The k ladder visits each k once, so encoding/heuristic reuse cannot
  // amortize across instances — this config is here for the bit-identical
  // contract (and the shared agglomerative-per-theta cache) rather than a
  // speedup claim.
  const schema::SignatureIndex ladder = MakeClusteredIndex(ladder_n, 42);
  for (const auto& rule : {rules::CovRule(), rules::SimRule()}) {
    auto evaluator = eval::MakeEvaluator(rule, &ladder);
    Report(&table, &ok, "lowest_k", rule.name(), ladder_n,
           MeasureLowestK(*evaluator, Rational(9, 10)));
  }

  std::cout << table.ToString();
  std::cout << "\nreuse = one ILP encoding per k reweighted per theta + "
               "once-per-k heuristics\n  (SolverOptions::reuse_instances); "
               "rebuild = fresh encoding and heuristic runs\n  per decision "
               "instance. identical = theta/k, instance counts, and "
               "refinements\n  agree exactly (the bit-identical contract).\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace rdfsr::bench

int main(int argc, char** argv) {
  int n = 128;
  int exact_n = 10;
  int ladder_n = 32;
  int frontier_n = 512;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      rdfsr::bench::Json().Open(argv[++i], "bench_solver");
    } else if (std::strcmp(argv[i], "--signatures") == 0 && i + 1 < argc) {
      n = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--exact-signatures") == 0 &&
               i + 1 < argc) {
      exact_n = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--ladder-signatures") == 0 &&
               i + 1 < argc) {
      ladder_n = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--frontier-signatures") == 0 &&
               i + 1 < argc) {
      frontier_n = std::stoi(argv[++i]);  // 0 skips the frontier probe
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--json <path>] [--signatures N] [--exact-signatures N]"
                   " [--ladder-signatures N] [--frontier-signatures N]\n";
      return 2;
    }
  }
  return rdfsr::bench::Run(n, exact_n, ladder_n, frontier_n);
}
