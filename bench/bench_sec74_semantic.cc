// Section 7.4 "Semantic Correctness": mix two explicit sorts (27 drug
// companies + 40 sultans), run a k = 2 highest-theta Cov refinement, and
// interpret the two implicit sorts as a binary classifier for "drug
// company". Paper: accuracy 74.6%, precision 61.4%, recall 100% with plain
// Cov; 82.1% / 69.2% / 100% with a modified Cov ignoring the RDF-plumbing
// properties (type, sameAs, subClassOf, label).

#include <iostream>

#include "bench_util.h"
#include "gen/mixed.h"
#include "rules/builtins.h"

namespace rdfsr {
namespace {

struct Metrics {
  int tp = 0, fp = 0, tn = 0, fn = 0;
  double Accuracy() const {
    const int total = tp + fp + tn + fn;
    return total == 0 ? 0 : static_cast<double>(tp + tn) / total;
  }
  double Precision() const {
    return tp + fp == 0 ? 0 : static_cast<double>(tp) / (tp + fp);
  }
  double Recall() const {
    return tp + fn == 0 ? 0 : static_cast<double>(tp) / (tp + fn);
  }
};

/// Classifies via the refinement: the sort containing more drug companies is
/// labeled "drug company" (the paper identifies sorts post hoc the same way).
Metrics Evaluate(const gen::MixedDataset& dataset,
                 const core::SortRefinement& refinement) {
  // Signature -> sort.
  std::vector<int> sort_of(dataset.index.num_signatures(), 0);
  for (std::size_t s = 0; s < refinement.num_sorts(); ++s) {
    for (int sig : refinement.sorts[s]) sort_of[sig] = static_cast<int>(s);
  }
  // Count drug companies per sort to pick the "drug" side.
  std::vector<int> drugs_in(refinement.num_sorts(), 0);
  std::vector<int> total_in(refinement.num_sorts(), 0);
  std::vector<int> subject_sort(dataset.subject_names.size(), 0);
  for (std::size_t i = 0; i < dataset.subject_names.size(); ++i) {
    const int sig =
        dataset.index.FindSubjectSignature(dataset.subject_names[i]);
    subject_sort[i] = sort_of[sig];
    ++total_in[subject_sort[i]];
    if (dataset.is_drug_company[i]) ++drugs_in[subject_sort[i]];
  }
  int drug_sort = 0;
  double best_ratio = -1;
  for (std::size_t s = 0; s < refinement.num_sorts(); ++s) {
    const double ratio =
        total_in[s] == 0 ? 0 : static_cast<double>(drugs_in[s]) / total_in[s];
    if (ratio > best_ratio) {
      best_ratio = ratio;
      drug_sort = static_cast<int>(s);
    }
  }
  Metrics m;
  for (std::size_t i = 0; i < dataset.subject_names.size(); ++i) {
    const bool predicted_drug = subject_sort[i] == drug_sort;
    const bool is_drug = dataset.is_drug_company[i];
    if (predicted_drug && is_drug) ++m.tp;
    if (predicted_drug && !is_drug) ++m.fp;
    if (!predicted_drug && !is_drug) ++m.tn;
    if (!predicted_drug && is_drug) ++m.fn;
  }
  return m;
}

void Report(const char* label, const Metrics& m, const char* paper_line) {
  TextTable table({"", "is drug company", "is sultan"});
  table.AddRow({"classified as drug company", std::to_string(m.tp),
                std::to_string(m.fp)});
  table.AddRow({"classified as sultan", std::to_string(m.fn),
                std::to_string(m.tn)});
  std::cout << "\n--- " << label << " ---\npaper: " << paper_line << "\n"
            << table.ToString() << "accuracy " << FormatDouble(m.Accuracy(), 3)
            << ", precision " << FormatDouble(m.Precision(), 3) << ", recall "
            << FormatDouble(m.Recall(), 3) << "\n";
}

}  // namespace
}  // namespace rdfsr

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::InitHarness(argc, argv, "sec74_semantic");
  bench::Banner("Section 7.4: recovering Drug Companies vs Sultans",
                "plain Cov: acc 74.6% / prec 61.4% / rec 100%; modified Cov "
                "(ignore RDF plumbing): acc 82.1% / prec 69.2% / rec 100%");

  const gen::MixedDataset dataset = gen::GenerateMixed();
  std::cout << "dataset: " << dataset.index.total_subjects()
            << " subjects (27 drug companies + 40 sultans), "
            << dataset.index.num_signatures() << " signatures\n";

  {
    auto cov = eval::ClosedFormEvaluator::Cov(&dataset.index);
    core::RefinementSolver solver(cov.get(), bench::BenchSolverOptions());
    const core::HighestThetaResult best = solver.FindHighestTheta(2);
    const Metrics m = Evaluate(dataset, best.refinement);
    bench::Json().Record("classify", {{"rule", "cov"}, {"k", "2"}},
                         best.seconds,
                         {{"theta", best.theta.ToDouble()},
                          {"accuracy", m.Accuracy()},
                          {"precision", m.Precision()},
                          {"recall", m.Recall()}});
    Report("plain Cov", m,
           "confusion 27/17 | 0/23; acc 74.6% prec 61.4% rec 100%");
  }
  {
    auto modified = eval::ClosedFormEvaluator::CovIgnoring(
        &dataset.index, dataset.plumbing_properties);
    core::RefinementSolver solver(modified.get(), bench::BenchSolverOptions());
    const core::HighestThetaResult best = solver.FindHighestTheta(2);
    const Metrics m = Evaluate(dataset, best.refinement);
    bench::Json().Record("classify", {{"rule", "cov-ignoring"}, {"k", "2"}},
                         best.seconds,
                         {{"theta", best.theta.ToDouble()},
                          {"accuracy", m.Accuracy()},
                          {"precision", m.Precision()},
                          {"recall", m.Recall()}});
    Report("modified Cov (ignoring type/sameAs/subClassOf/label)", m,
           "acc 82.1% prec 69.2% rec 100%");
  }
  return 0;
}
