// bench_ingest — end-to-end ingestion: N-Triples bytes -> SignatureIndex.
//
// Motivated by the Figure 8 observation that refinement-search runtime is
// independent of the number of subjects: ingestion must not be the part that
// scales badly. This harness measures the full load chain on synthetic
// DBpedia-shaped files (one sort, ~64 signature templates, ~10 triples per
// subject) at several sizes, comparing:
//
//   legacy    double-buffered file read, whole-Term interning (3 string
//             copies per triple), sort slice rebuilt as a second Graph, dense
//             |S| x |P| PropertyMatrix collapsed by SignatureIndex::FromMatrix
//   stream    single-allocation read, zero-copy string_view parse with
//             heterogeneous interning, IndexBuilder pairs -> sort -> group
//             (no dense intermediate)
//   api       api::Dataset::FromNTriplesFile — the production façade path
//   api-mt8   same, with parse_threads = 8 (clamped to the input's chunk
//             count; the sharded parse merges through Graph::MergeShards)
//
// The mt run also asserts the tentpole's bit-identical contract: an 8-thread
// parse of the same file must produce exactly the same dictionary (ids,
// kinds, lexical forms) and triple/subject/property orders as the 1-thread
// parse, fingerprint-compared. Every record carries the effective thread
// count and the process peak RSS.
//
// The `intermediate_bytes` metric is the peak transient state of the
// index-construction stage: S x P matrix cells for legacy, 8-byte pairs plus
// dense remap tables for the streaming builder. This is the O(subjects x
// properties) -> O(triples) reduction; the JSON records capture it per run.
//
// Usage: bench_ingest [--json <path>] [--triples N[,N...]]   (default sizes
// 100k and 1M; CI runs the small size and archives the JSON.)

#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "api/rdfsr.h"
#include "bench_util.h"
#include "rdf/ntriples.h"
#include "rdf/vocab.h"
#include "schema/index_builder.h"
#include "schema/property_set.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rdfsr::bench {
namespace {

constexpr const char* kSort = "http://bench/Entity";

/// Writes a synthetic single-sort N-Triples file of roughly `target_triples`
/// triples: 64 properties, 48 signature templates, literal-heavy objects —
/// the shape of the paper's DBpedia Persons dataset.
std::size_t WriteSyntheticFile(const std::string& path,
                               std::size_t target_triples, std::uint64_t seed) {
  constexpr int kProps = 64;
  constexpr int kTemplates = 48;
  Rng rng(seed);

  std::vector<std::vector<int>> templates(kTemplates);
  for (auto& tmpl : templates) {
    for (int p = 0; p < kProps; ++p) {
      if (rng.Chance(0.15)) tmpl.push_back(p);
    }
    if (tmpl.empty()) tmpl.push_back(static_cast<int>(rng.Below(kProps)));
  }

  std::vector<std::string> prop_names(kProps);
  for (int p = 0; p < kProps; ++p) {
    prop_names[p] = "<http://bench/p" + std::to_string(p) + ">";
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  RDFSR_CHECK(out.good()) << "cannot write " << path;
  std::size_t triples = 0;
  std::size_t subject = 0;
  while (triples < target_triples) {
    const std::string s = "<http://bench/e" + std::to_string(subject) + ">";
    out << s << " <" << rdf::vocab::kRdfType << "> <" << kSort << "> .\n";
    ++triples;
    const auto& tmpl = templates[subject % kTemplates];
    for (int p : tmpl) {
      out << s << " " << prop_names[p] << " \"v" << subject << "_" << p
          << "\" .\n";
      ++triples;
    }
    ++subject;
  }
  return triples;
}

struct LoadResult {
  double seconds = 0;
  std::size_t intermediate_bytes = 0;
  std::size_t subjects = 0;
  std::size_t properties = 0;
  std::size_t signatures = 0;
  int threads = 1;             // effective parser threads of the run
  std::size_t peak_rss = 0;    // process high-water RSS after the load
};

/// Order-sensitive FNV fingerprint of everything the parse is contracted to
/// reproduce bit-identically: dictionary ids/kinds/strings, triple order,
/// and the subject / property first-appearance orders.
std::uint64_t FingerprintGraph(const rdf::Graph& g) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 0x100000001b3ULL; };
  const auto mix_str = [&](const std::string& str) {
    mix(str.size());
    for (const char c : str) mix(static_cast<unsigned char>(c));
  };
  const rdf::Dictionary& dict = g.dict();
  mix(dict.size());
  for (rdf::TermId id = 0; id < dict.size(); ++id) {
    const rdf::Term& t = dict.term(id);
    mix(static_cast<std::uint64_t>(t.kind));
    mix_str(t.lexical);
    mix_str(t.datatype);
    mix_str(t.lang);
  }
  mix(g.size());
  for (const rdf::Triple& t : g.triples()) {
    mix(t.subject);
    mix(t.predicate);
    mix(t.object);
  }
  for (const rdf::TermId s : g.subjects()) mix(s);
  for (const rdf::TermId p : g.properties()) mix(p);
  return h;
}

// --- The seed's load chain, mirrored verbatim so the speedup is measured
// --- against what this repo actually did before the streaming pipeline:
// ---  * dictionary storing every Term twice (deque + map key), non-view
// ---    lookups constructing a temporary Term per FindIri,
// ---  * node-based unordered_set per-triple dedup plus an (s,p) set insert
// ---    on every Add,
// ---  * sort slicing by rebuilding the slice as a second graph (two full
// ---    triple scans, every slice triple re-hashed),
// ---  * the dense |S| x |P| matrix collapsed row-by-row into signatures.
namespace seed {

struct Dict {
  std::deque<rdf::Term> terms;
  std::unordered_map<rdf::Term, rdf::TermId, rdf::TermHash> ids;
  rdf::TermId Intern(const rdf::Term& t) {
    auto it = ids.find(t);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<rdf::TermId>(terms.size());
    terms.push_back(t);  // double storage, as the seed did
    ids.emplace(t, id);
    return id;
  }
  rdf::TermId FindIri(const std::string& iri) const {
    auto it = ids.find(rdf::Term::Iri(iri));  // temporary Term per lookup
    return it == ids.end() ? rdf::kInvalidTermId : it->second;
  }
};

struct Graph {
  Dict dict;
  std::vector<rdf::Triple> triples;
  std::unordered_set<rdf::Triple, rdf::TripleHash> triple_set;
  std::vector<rdf::TermId> subjects, properties;
  std::unordered_set<rdf::TermId> subject_set, property_set;
  std::unordered_set<std::uint64_t> subject_property;

  void Add(rdf::Triple t) {
    if (!triple_set.insert(t).second) return;
    triples.push_back(t);
    if (subject_set.insert(t.subject).second) subjects.push_back(t.subject);
    if (property_set.insert(t.predicate).second) {
      properties.push_back(t.predicate);
    }
    subject_property.insert((static_cast<std::uint64_t>(t.subject) << 32) |
                            t.predicate);
  }
};

}  // namespace seed

/// The pre-IndexBuilder load chain: stream-buffer double read, Term
/// materialization + whole-Term interning per triple, the sort slice rebuilt
/// as a second graph, and the dense matrix intermediate.
LoadResult LoadLegacy(const std::string& path) {
  WallTimer timer;
  std::ifstream in(path, std::ios::binary);
  RDFSR_CHECK(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();                   // copy 1: stream buffer
  const std::string text = buf.str();  // copy 2: materialized string

  seed::Graph graph;
  const Status st = rdf::ParseNTriplesStream(
      text, [&graph](const rdf::TermView& s, const rdf::TermView& p,
                     const rdf::TermView& o) {
        graph.Add(rdf::Triple{graph.dict.Intern(s.ToTerm()),
                              graph.dict.Intern(p.ToTerm()),
                              graph.dict.Intern(o.ToTerm())});
      });
  RDFSR_CHECK(st.ok()) << st.ToString();

  // Sort slice as a second graph: membership scan + full re-add (seed
  // Graph::SortSlice).
  const rdf::TermId type_prop = graph.dict.FindIri(rdf::vocab::kRdfType);
  const rdf::TermId sort = graph.dict.FindIri(kSort);
  RDFSR_CHECK(type_prop != rdf::kInvalidTermId && sort != rdf::kInvalidTermId);
  std::unordered_set<rdf::TermId> members;
  for (const rdf::Triple& t : graph.triples) {
    if (t.predicate == type_prop && t.object == sort) members.insert(t.subject);
  }
  seed::Graph slice;
  slice.dict = std::move(graph.dict);  // seed slices shared the dictionary
  for (const rdf::Triple& t : graph.triples) {
    if (!members.count(t.subject)) continue;
    if (t.predicate == type_prop) continue;
    slice.Add(t);
  }

  // Dense |S| x |P| matrix (PropertyMatrix::FromGraph) ...
  std::unordered_map<rdf::TermId, std::size_t> subj_index, prop_index;
  for (rdf::TermId s : slice.subjects) subj_index.emplace(s, subj_index.size());
  for (rdf::TermId p : slice.properties) {
    prop_index.emplace(p, prop_index.size());
  }
  const std::size_t num_subjects = subj_index.size();
  const std::size_t num_props = prop_index.size();
  std::vector<std::uint8_t> cells(num_subjects * num_props, 0);
  for (const rdf::Triple& t : slice.triples) {
    cells[subj_index.at(t.subject) * num_props + prop_index.at(t.predicate)] =
        1;
  }
  // ... collapsed row-by-row into signature groups (FromMatrix).
  std::unordered_map<schema::PropertySet, std::int64_t,
                     schema::PropertySetHash>
      groups;
  for (std::size_t s = 0; s < num_subjects; ++s) {
    schema::PropertySet row(num_props);
    for (std::size_t p = 0; p < num_props; ++p) {
      if (cells[s * num_props + p]) row.Insert(p);
    }
    ++groups[std::move(row)];
  }

  LoadResult r;
  r.seconds = timer.Seconds();
  r.intermediate_bytes = cells.size();
  r.subjects = num_subjects;
  r.properties = num_props;
  r.signatures = groups.size();
  r.peak_rss = PeakRssBytes();
  return r;
}

/// The streaming chain, spelled out so the builder's intermediate-bytes
/// metric is observable: single read, view parse, pairs -> canonical index.
LoadResult LoadStreaming(const std::string& path) {
  WallTimer timer;
  auto text = rdf::ReadFileToString(path);
  RDFSR_CHECK(text.ok()) << text.status().ToString();
  rdf::Graph graph;
  const Status st = rdf::ParseNTriplesInto(*text, &graph);
  RDFSR_CHECK(st.ok()) << st.ToString();

  const rdf::Dictionary& dict = graph.dict();
  const rdf::TermId type_prop = dict.FindIri(rdf::vocab::kRdfType);
  const rdf::TermId sort = dict.FindIri(kSort);
  RDFSR_CHECK(type_prop != rdf::kInvalidTermId && sort != rdf::kInvalidTermId);
  std::unordered_set<rdf::TermId> members;
  for (std::uint32_t i : graph.TypePostings()) {
    if (graph.triples()[i].object == sort) {
      members.insert(graph.triples()[i].subject);
    }
  }
  schema::IndexBuilder builder;
  builder.ReservePairs(graph.size());
  for (const rdf::Triple& t : graph.triples()) {
    if (t.predicate == type_prop || members.count(t.subject) == 0) continue;
    builder.Add(t.subject, t.predicate);
  }
  const std::size_t intermediate = builder.intermediate_bytes();
  const schema::SignatureIndex index =
      builder.Build(dict, /*keep_subject_names=*/true);

  LoadResult r;
  r.seconds = timer.Seconds();
  r.intermediate_bytes = intermediate;
  r.subjects = static_cast<std::size_t>(index.total_subjects());
  r.properties = index.num_properties();
  r.signatures = index.num_signatures();
  r.peak_rss = PeakRssBytes();
  return r;
}

/// The production façade path (optionally multi-threaded parse).
LoadResult LoadApi(const std::string& path, int parse_threads) {
  WallTimer timer;
  api::DatasetOptions options;
  options.sort = kSort;
  options.parse_threads = parse_threads;
  auto dataset = api::Dataset::FromNTriplesFile(path, options);
  RDFSR_CHECK(dataset.ok()) << dataset.status().ToString();

  LoadResult r;
  r.seconds = timer.Seconds();
  r.intermediate_bytes = 8 * dataset->num_triples();  // builder pairs
  r.subjects = static_cast<std::size_t>(dataset->num_subjects());
  r.properties = dataset->num_properties();
  r.signatures = dataset->num_signatures();
  r.threads = dataset->effective_parse_threads();
  r.peak_rss = PeakRssBytes();
  return r;
}

void RecordRun(const std::string& config, std::size_t triples,
               const LoadResult& r, double speedup_vs_legacy,
               double speedup_vs_1thread = 0) {
  std::vector<std::pair<std::string, double>> metrics = {
      {"triples", static_cast<double>(triples)},
      {"triples_per_sec", static_cast<double>(triples) / r.seconds},
      {"threads", static_cast<double>(r.threads)},
      {"peak_rss_bytes", static_cast<double>(r.peak_rss)},
      {"intermediate_bytes", static_cast<double>(r.intermediate_bytes)},
      // What a dense |S| x |P| intermediate would cost for this view — the
      // legacy config's intermediate_bytes equals this; the streaming
      // configs' intermediate_bytes must stay independent of it.
      {"dense_cells_equiv",
       static_cast<double>(r.subjects) * static_cast<double>(r.properties)},
      {"subjects", static_cast<double>(r.subjects)},
      {"properties", static_cast<double>(r.properties)},
      {"signatures", static_cast<double>(r.signatures)},
  };
  if (speedup_vs_legacy > 0) {
    metrics.emplace_back("speedup_vs_legacy", speedup_vs_legacy);
  }
  if (speedup_vs_1thread > 0) {
    metrics.emplace_back("speedup_vs_1thread", speedup_vs_1thread);
  }
  Json().Record("ingest/" + config,
                {{"config", config}, {"triples", std::to_string(triples)}},
                r.seconds, metrics);
}

int Run(const std::vector<std::size_t>& sizes) {
  Banner("Ingestion: N-Triples bytes -> SignatureIndex",
         "Section 7 datasets; Figure 8 scalability reading");

  TextTable table({"triples", "config", "seconds", "Mtriples/s",
                   "intermediate", "speedup"});
  bool ok = true;
  for (std::size_t target : sizes) {
    const std::string path =
        "/tmp/bench_ingest_" + std::to_string(target) + ".nt";
    const std::size_t triples = WriteSyntheticFile(path, target, /*seed=*/42);

    const LoadResult legacy = LoadLegacy(path);
    const LoadResult stream = LoadStreaming(path);
    const LoadResult api = LoadApi(path, /*parse_threads=*/1);
    const LoadResult api_mt = LoadApi(path, /*parse_threads=*/8);

    // Bit-identical contract of the sharded parse: the 8-thread graph (ids,
    // terms, triple/subject/property orders) must fingerprint the same as
    // the sequential one. Oversubscription is fine — the contract holds for
    // any thread count, so this assertion is meaningful on any machine.
    std::uint64_t fp1 = 0, fp8 = 0;
    {
      rdf::ParseOptions po;
      po.threads = 1;
      auto g1 = rdf::ParseNTriplesFile(path, po);
      RDFSR_CHECK(g1.ok()) << g1.status().ToString();
      fp1 = FingerprintGraph(*g1);
      po.threads = 8;
      auto g8 = rdf::ParseNTriplesFile(path, po);
      RDFSR_CHECK(g8.ok()) << g8.status().ToString();
      fp8 = FingerprintGraph(*g8);
    }
    if (fp1 != fp8) {
      std::cerr << "FAIL: 8-thread parse is not bit-identical to 1-thread at "
                << triples << " triples\n";
      ok = false;
    }
    std::remove(path.c_str());

    // All paths must agree on the resulting view.
    for (const LoadResult* r : {&stream, &api, &api_mt}) {
      if (r->subjects != legacy.subjects ||
          r->properties != legacy.properties ||
          r->signatures != legacy.signatures) {
        std::cerr << "FAIL: index mismatch vs legacy at " << triples
                  << " triples\n";
        ok = false;
      }
    }

    const auto row = [&](const std::string& config, const LoadResult& r,
                         double speedup, double speedup_mt = 0) {
      std::ostringstream mb;
      mb << std::fixed << std::setprecision(1)
         << static_cast<double>(r.intermediate_bytes) / (1024.0 * 1024.0)
         << " MB";
      std::ostringstream rate;
      rate << std::fixed << std::setprecision(2)
           << static_cast<double>(triples) / r.seconds / 1e6;
      std::ostringstream sec;
      sec << std::fixed << std::setprecision(3) << r.seconds;
      std::ostringstream sp;
      if (speedup > 0) {
        sp << std::fixed << std::setprecision(2) << speedup << "x";
      } else {
        sp << "-";
      }
      table.AddRow({std::to_string(triples), config, sec.str(), rate.str(),
                    mb.str(), sp.str()});
      RecordRun(config, triples, r, speedup, speedup_mt);
    };
    row("legacy", legacy, 0);
    row("stream", stream, legacy.seconds / stream.seconds);
    row("api", api, legacy.seconds / api.seconds);
    row("api-mt8", api_mt, legacy.seconds / api_mt.seconds,
        api.seconds / api_mt.seconds);
    std::cout << "  parse determinism @" << triples
              << " triples: 8-thread fingerprint "
              << (fp1 == fp8 ? "== 1-thread (bit-identical)\n"
                             : "!= 1-thread (MISMATCH)\n");
  }
  std::cout << table.ToString();
  std::cout << "\nintermediate = transient bytes of the index-construction "
               "stage\n  (legacy: dense |S| x |P| matrix cells; stream/api: "
               "8-byte (subject, property)\n  pairs + dense id remap — "
               "O(triples), independent of |S| x |P|)\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace rdfsr::bench

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      rdfsr::bench::Json().Open(argv[++i], "bench_ingest");
    } else if (std::strcmp(argv[i], "--triples") == 0 && i + 1 < argc) {
      std::stringstream list(argv[++i]);
      std::string item;
      while (std::getline(list, item, ',')) {
        sizes.push_back(static_cast<std::size_t>(std::stoull(item)));
      }
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--json <path>] [--triples N[,N...]]\n";
      return 2;
    }
  }
  if (sizes.empty()) sizes = {100000, 1000000};
  return rdfsr::bench::Run(sizes);
}
