// Figure 7: WordNet Nouns, lowest k for a fixed threshold — (a) Cov with
// theta = 0.9 (paper: k = 31; a highly uniform sort resists Cov refinement,
// many sorts collapse to single signatures) and (b) Sim with theta = 0.98
// (paper: k = 4; the four dominant signatures are isolated).

#include <iostream>

#include "bench_util.h"
#include "gen/wordnet.h"

namespace rdfsr {
namespace {

void RunCase(const char* label, const char* paper_line, Rational theta,
             int max_k, const schema::SignatureIndex& index,
             std::unique_ptr<eval::Evaluator> evaluator) {
  std::cout << "\n--- " << label << " ---\npaper: " << paper_line << "\n";
  core::SolverOptions options = bench::BenchSolverOptions();
  options.mip.time_limit_seconds = 5.0;
  options.greedy.restarts = 3;
  options.greedy.max_passes = 12;
  core::RefinementSolver solver(evaluator.get(), options);
  auto result = solver.FindLowestK(theta, max_k);
  if (!result.ok()) {
    std::cout << "measured: " << result.status().ToString() << "\n";
    return;
  }
  bench::Json().Record(
      "lowest_k", {{"case", label}, {"theta", theta.ToString()}},
      result->seconds,
      {{"k", static_cast<double>(result->k)},
       {"instances", static_cast<double>(result->instances)},
       {"proven_minimal", result->proven_minimal ? 1.0 : 0.0}});
  std::cout << "measured: lowest k = " << result->k
            << (result->proven_minimal ? " (proven minimal)"
                                       : " (smaller k not excluded)")
            << ", " << FormatDouble(result->seconds, 1) << "s\n";
  // Print only summary stats; 30+ sorts would flood the terminal (the paper
  // also truncates Fig 7a to the first 12 sorts).
  std::int64_t smallest = index.total_subjects(), largest = 0;
  for (std::size_t i = 0; i < result->refinement.num_sorts(); ++i) {
    const std::int64_t subjects =
        result->refinement.SubjectsIn(index, static_cast<int>(i));
    smallest = std::min(smallest, subjects);
    largest = std::max(largest, subjects);
  }
  std::cout << "sort sizes range " << FormatCount(smallest) << " .. "
            << FormatCount(largest) << " subjects across "
            << result->refinement.num_sorts() << " sorts\n";
}

}  // namespace
}  // namespace rdfsr

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::InitHarness(argc, argv, "fig7_wordnet_lowestk");
  bench::Banner("Figure 7: WordNet Nouns, lowest k for fixed theta",
                "Fig 7a (Cov theta=0.9: k = 31 — resists refinement), "
                "Fig 7b (Sim theta=0.98: k = 4, dominant signatures "
                "isolated)");
  gen::WordnetConfig config;
  config.num_subjects = 2000;
  const schema::SignatureIndex index = gen::GenerateWordnet(config);
  std::cout << "dataset: " << FormatCount(index.total_subjects())
            << " subjects, " << index.num_signatures() << " signatures\n";

  RunCase("(a) sigma_Cov, theta = 0.9",
          "k = 31 of 53 signatures — the sort is already highly structured",
          Rational(9, 10), static_cast<int>(index.num_signatures()), index,
          eval::ClosedFormEvaluator::Cov(&index));
  RunCase("(b) sigma_Sim, theta = 0.98", "k = 4", Rational(98, 100),
          static_cast<int>(index.num_signatures()), index,
          eval::ClosedFormEvaluator::Sim(&index));
  return 0;
}
