// Shared helpers for the experiment harness binaries.
//
// Each bench binary regenerates one table or figure from Section 7 of the
// paper on the calibrated synthetic datasets, printing the paper's reported
// numbers next to ours. See EXPERIMENTS.md for the collected results.
//
// Every harness binary also accepts `--json <path>`: measurements are then
// appended as machine-readable records (a JSON array of
// {"bench", "name", "params", "seconds", "metrics"} objects) for the perf
// trajectory. Call InitHarness() first thing in main() and Json().Record()
// after each timed section.

#ifndef RDFSR_BENCH_BENCH_UTIL_H_
#define RDFSR_BENCH_BENCH_UTIL_H_

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/refinement.h"
#include "core/solver.h"
#include "eval/evaluator.h"
#include "util/table.h"

namespace rdfsr::bench {

/// Collects measurement records and mirrors them to a JSON file. The file is
/// rewritten after every Record() so that even an aborted run leaves a valid
/// JSON array behind.
class JsonRecorder {
 public:
  /// Starts recording to `path`; `bench` tags every record with the binary's
  /// short name.
  void Open(std::string path, std::string bench) {
    path_ = std::move(path);
    bench_ = std::move(bench);
    Rewrite();
  }

  bool enabled() const { return !path_.empty(); }

  /// Appends one record. `params` describe the configuration measured (string
  /// values), `seconds` the wall time of the section, `metrics` its numeric
  /// results. Pass `timed_out = true` for a deadline-cut section: the record
  /// then carries `"timed_out": true` next to whatever partial metrics the
  /// run produced, so trajectory tooling can separate cut runs from complete
  /// ones instead of averaging them together (complete runs omit the key).
  void Record(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& params,
      double seconds,
      const std::vector<std::pair<std::string, double>>& metrics = {},
      bool timed_out = false) {
    if (!enabled()) return;
    std::ostringstream row;
    row << "{\"bench\": " << Quote(bench_) << ", \"name\": " << Quote(name)
        << ", \"params\": {";
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i > 0) row << ", ";
      row << Quote(params[i].first) << ": " << Quote(params[i].second);
    }
    row << "}, \"seconds\": " << Number(seconds);
    if (timed_out) row << ", \"timed_out\": true";
    row << ", \"metrics\": {";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      if (i > 0) row << ", ";
      row << Quote(metrics[i].first) << ": " << Number(metrics[i].second);
    }
    row << "}}";
    rows_.push_back(row.str());
    Rewrite();
  }

 private:
  static std::string Quote(const std::string& text) {
    std::string out = "\"";
    for (const char c : text) {
      switch (c) {
        case '"':  out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n";  break;
        case '\t': out += "\\t";  break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out + "\"";
  }

  /// JSON has no NaN/Inf literals: non-finite values serialize as null (the
  /// former magnitude check also nulled finite values above 1e308 and would
  /// have let a plain `<<` print "inf"/"nan", invalidating the artifact).
  /// Finite values keep full round-trip precision — these records exist to
  /// be parsed back.
  static std::string Number(double value) {
    if (!std::isfinite(value)) return "null";
    std::ostringstream out;
    out << std::setprecision(std::numeric_limits<double>::max_digits10)
        << value;
    return out.str();
  }

  void Rewrite() const {
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
      std::cerr << "warning: cannot write JSON records to " << path_ << "\n";
      return;
    }
    out << "[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << (i > 0 ? ",\n " : "\n ") << rows_[i];
    }
    out << (rows_.empty() ? "]" : "\n]") << "\n";
  }

  std::string path_;
  std::string bench_;
  std::vector<std::string> rows_;
};

/// The process-wide recorder (inert until InitHarness sees --json).
inline JsonRecorder& Json() {
  static JsonRecorder recorder;
  return recorder;
}

/// Peak resident set size of this process in bytes (getrusage; Linux
/// reports ru_maxrss in KiB, macOS in bytes). 0 when the platform offers no
/// reading. A high-water mark: it never decreases, so benches that compare
/// configurations should record it immediately after the section of
/// interest — later sections can only push it up.
inline std::size_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

/// Parses the shared harness flags out of argv — currently `--json <path>` —
/// and prints usage on anything unrecognized. Call first thing in main().
inline void InitHarness(int argc, char** argv, const std::string& bench_name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      Json().Open(argv[++i], bench_name);
    } else {
      std::cerr << "usage: " << argv[0] << " [--json <path>]\n";
      std::exit(2);
    }
  }
}

/// Compact one-line rendering of a refinement's sort contents
/// ("0,2|1,3" — sorts separated by '|'), for identity comparisons and
/// failure messages in the harness binaries.
inline std::string RenderSorts(const core::SortRefinement& refinement) {
  std::ostringstream out;
  for (std::size_t i = 0; i < refinement.sorts.size(); ++i) {
    if (i) out << "|";
    for (std::size_t j = 0; j < refinement.sorts[i].size(); ++j) {
      if (j) out << ",";
      out << refinement.sorts[i][j];
    }
  }
  return out.str();
}

/// Prints the standard experiment banner.
inline void Banner(const std::string& experiment, const std::string& paper) {
  std::cout << "==================================================\n"
            << experiment << "\n"
            << "paper reference: " << paper << "\n"
            << "==================================================\n";
}

/// Prints per-sort statistics of a refinement in the style of Figures 4-7
/// captions: subjects, signatures, and sigma values under Cov and Sim.
inline void PrintRefinementStats(const schema::SignatureIndex& index,
                                 const core::SortRefinement& refinement) {
  const auto cov = eval::ClosedFormEvaluator::Cov(&index);
  const auto sim = eval::ClosedFormEvaluator::Sim(&index);
  TextTable table({"sort", "subjects", "signatures", "sigma_Cov", "sigma_Sim"});
  for (std::size_t i = 0; i < refinement.num_sorts(); ++i) {
    table.AddRow({std::to_string(i + 1),
                  FormatCount(refinement.SubjectsIn(index, static_cast<int>(i))),
                  std::to_string(refinement.sorts[i].size()),
                  FormatDouble(cov->Sigma(refinement.sorts[i])),
                  FormatDouble(sim->Sigma(refinement.sorts[i]))});
  }
  std::cout << table.ToString();
}

/// Bench-scale solver options: modest limits so every binary finishes in
/// seconds-to-minutes on a laptop; instances that exceed them surface as
/// kUnknown exactly like the paper's timed-out CPLEX runs.
inline core::SolverOptions BenchSolverOptions() {
  core::SolverOptions options;
  options.mip.time_limit_seconds = 15.0;
  options.mip.max_nodes = 400000;
  options.greedy.restarts = 4;
  options.greedy.max_passes = 20;
  return options;
}

}  // namespace rdfsr::bench

#endif  // RDFSR_BENCH_BENCH_UTIL_H_
