// Shared helpers for the experiment harness binaries.
//
// Each bench binary regenerates one table or figure from Section 7 of the
// paper on the calibrated synthetic datasets, printing the paper's reported
// numbers next to ours. See EXPERIMENTS.md for the collected results.

#ifndef RDFSR_BENCH_BENCH_UTIL_H_
#define RDFSR_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>

#include "core/refinement.h"
#include "core/solver.h"
#include "eval/evaluator.h"
#include "util/table.h"

namespace rdfsr::bench {

/// Prints the standard experiment banner.
inline void Banner(const std::string& experiment, const std::string& paper) {
  std::cout << "==================================================\n"
            << experiment << "\n"
            << "paper reference: " << paper << "\n"
            << "==================================================\n";
}

/// Prints per-sort statistics of a refinement in the style of Figures 4-7
/// captions: subjects, signatures, and sigma values under Cov and Sim.
inline void PrintRefinementStats(const schema::SignatureIndex& index,
                                 const core::SortRefinement& refinement) {
  const auto cov = eval::ClosedFormEvaluator::Cov(&index);
  const auto sim = eval::ClosedFormEvaluator::Sim(&index);
  TextTable table({"sort", "subjects", "signatures", "sigma_Cov", "sigma_Sim"});
  for (std::size_t i = 0; i < refinement.num_sorts(); ++i) {
    table.AddRow({std::to_string(i + 1),
                  FormatCount(refinement.SubjectsIn(index, static_cast<int>(i))),
                  std::to_string(refinement.sorts[i].size()),
                  FormatDouble(cov->Sigma(refinement.sorts[i])),
                  FormatDouble(sim->Sigma(refinement.sorts[i]))});
  }
  std::cout << table.ToString();
}

/// Bench-scale solver options: modest limits so every binary finishes in
/// seconds-to-minutes on a laptop; instances that exceed them surface as
/// kUnknown exactly like the paper's timed-out CPLEX runs.
inline core::SolverOptions BenchSolverOptions() {
  core::SolverOptions options;
  options.mip.time_limit_seconds = 15.0;
  options.mip.max_nodes = 400000;
  options.greedy.restarts = 4;
  options.greedy.max_passes = 20;
  return options;
}

}  // namespace rdfsr::bench

#endif  // RDFSR_BENCH_BENCH_UTIL_H_
