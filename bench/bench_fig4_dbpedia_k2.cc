// Figure 4: DBpedia Persons split into k=2 implicit sorts under (a) Cov,
// (b) Sim, and (c) SymDep[deathPlace, deathDate], via the highest-theta
// search. The headline shapes to reproduce:
//   (a) an "alive" sort with no deathDate/deathPlace columns vs the rest,
//   (b) a more balanced split isolating the know-little-but-name subjects,
//   (c) one sort where SymDep is trivially 1.0 (deathPlace column absent)
//       and one where deathDate/deathPlace nearly coincide (paper: 0.82).

#include <iostream>

#include "bench_util.h"
#include "gen/persons.h"
#include "schema/ascii_view.h"

namespace rdfsr {
namespace {

void RunCase(const char* label, const char* paper_line,
             const schema::SignatureIndex& index,
             std::unique_ptr<eval::Evaluator> evaluator) {
  std::cout << "\n--- " << label << " ---\npaper: " << paper_line << "\n";
  core::RefinementSolver solver(evaluator.get(),
                                bench::BenchSolverOptions());
  const core::HighestThetaResult best = solver.FindHighestTheta(2);
  bench::Json().Record(
      "highest_theta", {{"case", label}, {"k", "2"}}, best.seconds,
      {{"theta", best.theta.ToDouble()},
       {"instances", static_cast<double>(best.instances)},
       {"ceiling_proven", best.ceiling_proven ? 1.0 : 0.0}});
  std::cout << "measured: theta = " << FormatDouble(best.theta.ToDouble())
            << " (" << best.instances << " decision instances"
            << (best.ceiling_proven ? ", ceiling proven" : ", ceiling open")
            << ", " << FormatDouble(best.seconds, 1) << "s)\n";
  bench::PrintRefinementStats(index, best.refinement);

  // The Fig 4a signature: which of deathDate/deathPlace survive per sort.
  const int death_date = index.FindProperty("deathDate");
  const int death_place = index.FindProperty("deathPlace");
  for (std::size_t i = 0; i < best.refinement.num_sorts(); ++i) {
    bool has_dd = false, has_dp = false;
    for (int sig : best.refinement.sorts[i]) {
      has_dd = has_dd || index.Has(sig, death_date);
      has_dp = has_dp || index.Has(sig, death_place);
    }
    std::cout << "sort " << (i + 1) << " columns: deathDate "
              << (has_dd ? "present" : "ABSENT") << ", deathPlace "
              << (has_dp ? "present" : "ABSENT") << "\n";
  }
  std::cout << schema::RenderRefinementView(
      index, best.refinement.sorts,
      {.max_rows = 6, .show_property_header = false, .show_counts = true});
}

}  // namespace
}  // namespace rdfsr

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::InitHarness(argc, argv, "fig4_dbpedia_k2");
  bench::Banner("Figure 4: DBpedia Persons, k = 2 highest-theta refinements",
                "Fig 4a/4b/4c of Section 7.1.1");
  const schema::SignatureIndex index = gen::GeneratePersons();

  RunCase("(a) sigma_Cov",
          "left sort 528,593 subj / 8 sigs, Cov 0.73; right 262,110 subj / "
          "56 sigs, Cov 0.71; left sort = people that are alive",
          index, eval::ClosedFormEvaluator::Cov(&index));
  RunCase("(b) sigma_Sim",
          "left 387,297 subj / 37 sigs, Sim 0.82; right 403,406 subj / 27 "
          "sigs, Sim 0.85; balanced cardinalities",
          index, eval::ClosedFormEvaluator::Sim(&index));
  RunCase("(c) sigma_SymDep[deathPlace, deathDate]",
          "left 305,610 subj, SymDep 1.0 (trivially: no deathPlace column); "
          "right 485,093 subj, SymDep 0.82",
          index,
          eval::ClosedFormEvaluator::SymDep(&index, "deathPlace",
                                            "deathDate"));
  return 0;
}
