// Microbenchmark: scalar vs word-packed property-set kernels.
//
// Measures the two inner-loop primitives every evaluator and refinement pass
// leans on — subset tests (CountHavingAll, abstract satisfaction) and
// intersection counts (greedy overlap scoring) — at growing property counts.
// The scalar baselines reproduce the pre-refactor byte-matrix/sorted-vector
// code paths; the packed variants run on PropertySet words. This is the perf
// baseline future scaling PRs compare against: at 256+ properties the packed
// kernels should be >= 4x the scalar ones.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "schema/property_set.h"
#include "util/rng.h"

namespace rdfsr {
namespace {

constexpr int kNumSets = 64;  // DBpedia Persons-scale signature count.

/// Deterministic random sorted supports with ~50% density — representative of
/// supports within a structured sort, where rows share most of their columns
/// (high sigma_Cov is precisely that regime).
std::vector<std::vector<int>> MakeSupports(int num_props) {
  Rng rng(12345);
  std::vector<std::vector<int>> supports(kNumSets);
  for (auto& s : supports) {
    for (int p = 0; p < num_props; ++p) {
      if (rng.Below(2) == 0) s.push_back(p);
    }
    if (s.empty()) s.push_back(static_cast<int>(rng.Below(num_props)));
  }
  return supports;
}

std::vector<schema::PropertySet> Pack(const std::vector<std::vector<int>>& v,
                                      int num_props) {
  std::vector<schema::PropertySet> out;
  out.reserve(v.size());
  for (const auto& s : v) {
    out.push_back(schema::PropertySet::FromIndices(num_props, s));
  }
  return out;
}

/// Scalar byte rows, as the old SignatureIndex `has_` matrix stored them.
std::vector<std::vector<std::uint8_t>> ToByteRows(
    const std::vector<std::vector<int>>& v, int num_props) {
  std::vector<std::vector<std::uint8_t>> rows(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    rows[i].assign(num_props, 0);
    for (int p : v[i]) rows[i][p] = 1;
  }
  return rows;
}

// --- Subset test: "does row a contain every property of row b?" -------------

void BM_SubsetScalar(benchmark::State& state) {
  const int num_props = static_cast<int>(state.range(0));
  const auto supports = MakeSupports(num_props);
  const auto rows = ToByteRows(supports, num_props);
  std::size_t subsets = 0;
  for (auto _ : state) {
    for (int a = 0; a < kNumSets; ++a) {
      for (int b = 0; b < kNumSets; ++b) {
        bool all = true;
        for (int p : supports[b]) {
          if (!rows[a][p]) {
            all = false;
            break;
          }
        }
        subsets += all;
      }
    }
    benchmark::DoNotOptimize(subsets);
  }
  state.SetItemsProcessed(state.iterations() * kNumSets * kNumSets);
}
BENCHMARK(BM_SubsetScalar)->Arg(64)->Arg(256)->Arg(1024);

void BM_SubsetPacked(benchmark::State& state) {
  const int num_props = static_cast<int>(state.range(0));
  const auto packed = Pack(MakeSupports(num_props), num_props);
  std::size_t subsets = 0;
  for (auto _ : state) {
    for (int a = 0; a < kNumSets; ++a) {
      for (int b = 0; b < kNumSets; ++b) {
        subsets += packed[b].IsSubsetOf(packed[a]);
      }
    }
    benchmark::DoNotOptimize(subsets);
  }
  state.SetItemsProcessed(state.iterations() * kNumSets * kNumSets);
}
BENCHMARK(BM_SubsetPacked)->Arg(64)->Arg(256)->Arg(1024);

// --- Subset test, confirmed-subset case -------------------------------------
//
// Random pairs almost never satisfy b ⊆ a, so both representations reject
// after ~1 probe and the loop overhead dominates. The case that costs real
// time is the CONFIRMED subset (dominance checks, CountHavingAll hits): the
// scalar walk must visit every element of b, the packed test a handful of
// words. Queries here are genuine subsets of their base row (~half the
// elements), so every test runs to completion.

std::vector<std::vector<int>> MakeSubsetQueries(
    const std::vector<std::vector<int>>& bases) {
  Rng rng(777);
  std::vector<std::vector<int>> queries(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    for (int p : bases[i]) {
      if (rng.Below(2) == 0) queries[i].push_back(p);
    }
    if (queries[i].empty() && !bases[i].empty()) {
      queries[i].push_back(bases[i][0]);
    }
  }
  return queries;
}

void BM_SubsetConfirmedScalar(benchmark::State& state) {
  const int num_props = static_cast<int>(state.range(0));
  const auto bases = MakeSupports(num_props);
  const auto queries = MakeSubsetQueries(bases);
  const auto rows = ToByteRows(bases, num_props);
  std::size_t subsets = 0;
  for (auto _ : state) {
    for (int i = 0; i < kNumSets; ++i) {
      bool all = true;
      for (int p : queries[i]) {
        if (!rows[i][p]) {
          all = false;
          break;
        }
      }
      subsets += all;
    }
    benchmark::DoNotOptimize(subsets);
  }
  state.SetItemsProcessed(state.iterations() * kNumSets);
}
BENCHMARK(BM_SubsetConfirmedScalar)->Arg(64)->Arg(256)->Arg(1024);

void BM_SubsetConfirmedPacked(benchmark::State& state) {
  const int num_props = static_cast<int>(state.range(0));
  const auto bases = MakeSupports(num_props);
  const auto packed_bases = Pack(bases, num_props);
  const auto packed_queries = Pack(MakeSubsetQueries(bases), num_props);
  std::size_t subsets = 0;
  for (auto _ : state) {
    for (int i = 0; i < kNumSets; ++i) {
      subsets += packed_queries[i].IsSubsetOf(packed_bases[i]);
    }
    benchmark::DoNotOptimize(subsets);
  }
  state.SetItemsProcessed(state.iterations() * kNumSets);
}
BENCHMARK(BM_SubsetConfirmedPacked)->Arg(64)->Arg(256)->Arg(1024);

// --- Intersection count: greedy overlap scoring -----------------------------

void BM_IntersectScalar(benchmark::State& state) {
  const int num_props = static_cast<int>(state.range(0));
  const auto supports = MakeSupports(num_props);
  std::size_t total = 0;
  for (auto _ : state) {
    for (int a = 0; a < kNumSets; ++a) {
      for (int b = 0; b < kNumSets; ++b) {
        // Sorted-vector intersection, as the scalar representation would.
        std::size_t n = 0;
        auto ia = supports[a].begin(), ib = supports[b].begin();
        while (ia != supports[a].end() && ib != supports[b].end()) {
          if (*ia < *ib) {
            ++ia;
          } else if (*ib < *ia) {
            ++ib;
          } else {
            ++n, ++ia, ++ib;
          }
        }
        total += n;
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kNumSets * kNumSets);
}
BENCHMARK(BM_IntersectScalar)->Arg(64)->Arg(256)->Arg(1024);

void BM_IntersectPacked(benchmark::State& state) {
  const int num_props = static_cast<int>(state.range(0));
  const auto packed = Pack(MakeSupports(num_props), num_props);
  std::size_t total = 0;
  for (auto _ : state) {
    for (int a = 0; a < kNumSets; ++a) {
      for (int b = 0; b < kNumSets; ++b) {
        total += packed[a].IntersectCount(packed[b]);
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kNumSets * kNumSets);
}
BENCHMARK(BM_IntersectPacked)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace rdfsr
