// Section 7.1.3: the analytic dependency-function splits. For any p1, p2:
//   * sigma_Dep[p1,p2] admits a theta = 1.0 refinement with k = 2:
//     (i) entities without p1, (ii) entities with p2;
//   * sigma_SymDep[p1,p2] admits a theta = 1.0 refinement with k = 3:
//     (i) p1 but not p2, (ii) p2 but not p1, (iii) both or neither.
// The paper uses this to argue the dependency functions are unsuited to
// lowest-k search (they split trivially) but good for characterization.

#include <iostream>

#include "bench_util.h"
#include "gen/persons.h"

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::InitHarness(argc, argv, "sec71_trivial_splits");
  bench::Banner("Section 7.1.3: trivial theta = 1.0 dependency splits",
                "Dep: k = 2 at theta 1.0; SymDep: k = 3 at theta 1.0");

  gen::PersonsConfig config;
  config.num_subjects = 2000;
  const schema::SignatureIndex index = gen::GeneratePersons(config);
  std::cout << "dataset: " << FormatCount(index.total_subjects())
            << " subjects, " << index.num_signatures() << " signatures\n";

  {
    std::cout << "\n--- sigma_Dep[birthPlace, birthDate], theta = 1.0 ---\n";
    auto dep =
        eval::ClosedFormEvaluator::Dep(&index, "birthPlace", "birthDate");
    core::RefinementSolver solver(dep.get(), bench::BenchSolverOptions());
    auto result = solver.FindLowestK(Rational(1), /*max_k=*/4);
    if (result.ok()) {
      bench::Json().Record("lowest_k",
                           {{"rule", "dep:birthPlace,birthDate"},
                            {"theta", "1"}},
                           result->seconds,
                           {{"k", static_cast<double>(result->k)}});
      std::cout << "measured: lowest k = " << result->k << " (paper: 2)\n";
      bench::PrintRefinementStats(index, result->refinement);
    } else {
      std::cout << "measured: " << result.status().ToString() << "\n";
    }
  }
  {
    std::cout << "\n--- sigma_SymDep[deathPlace, deathDate], theta = 1.0 "
                 "---\n";
    auto symdep =
        eval::ClosedFormEvaluator::SymDep(&index, "deathPlace", "deathDate");
    core::RefinementSolver solver(symdep.get(), bench::BenchSolverOptions());
    auto result = solver.FindLowestK(Rational(1), /*max_k=*/5);
    if (result.ok()) {
      bench::Json().Record("lowest_k",
                           {{"rule", "symdep:deathPlace,deathDate"},
                            {"theta", "1"}},
                           result->seconds,
                           {{"k", static_cast<double>(result->k)}});
      std::cout << "measured: lowest k = " << result->k << " (paper: <= 3)\n";
      bench::PrintRefinementStats(index, result->refinement);
    } else {
      std::cout << "measured: " << result.status().ToString() << "\n";
    }
  }
  return 0;
}
