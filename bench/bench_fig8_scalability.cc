// Figure 8: scalability of the ILP-based solution on synthetic YAGO explicit
// sorts. The paper measures, over ~500 sampled sorts, the total time of a
// "highest theta for k=2" search as a function of (a) the number of
// signatures — best fit ~ s^2.53 — and (b) the number of properties — best
// fit ~ e^{0.28 p} — and observes that runtime does NOT depend on the number
// of subjects. We sweep the same three axes at reduced ranges (our MIP
// replaces CPLEX) and fit the same functional forms.

#include <iostream>

#include "bench_util.h"
#include "gen/yago.h"
#include "util/fit.h"
#include "util/timer.h"

namespace rdfsr {
namespace {

double TimeHighestTheta(const schema::SignatureIndex& index) {
  auto cov = eval::ClosedFormEvaluator::Cov(&index);
  core::SolverOptions options = bench::BenchSolverOptions();
  options.mip.time_limit_seconds = 4.0;
  options.greedy.restarts = 2;
  options.greedy.max_passes = 10;
  core::RefinementSolver solver(cov.get(), options);
  WallTimer timer;
  (void)solver.FindHighestTheta(2);
  return timer.Millis();
}

}  // namespace
}  // namespace rdfsr

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::InitHarness(argc, argv, "fig8_scalability");
  bench::Banner("Figure 8: scalability on synthetic YAGO sorts",
                "runtime ~ s^2.53 in signatures (R2 0.72); ~ e^{0.28 p} in "
                "properties (R2 0.61); independent of subject count");

  // (a) runtime vs signatures (properties and subjects fixed).
  std::cout << "\n--- (a) runtime vs #signatures (12 properties, 4,000 "
               "subjects) ---\n";
  TextTable sig_table({"signatures", "runtime_ms"});
  std::vector<double> sig_x, sig_y;
  for (int sigs : {2, 4, 8, 12, 16, 24, 32, 40}) {
    gen::YagoSortSpec spec;
    spec.num_signatures = sigs;
    spec.num_properties = 12;
    spec.num_subjects = 4000;
    spec.seed = 1000 + sigs;
    const schema::SignatureIndex index = gen::GenerateYagoSort(spec);
    const double ms = TimeHighestTheta(index);
    bench::Json().Record("highest_theta_k2",
                         {{"axis", "signatures"},
                          {"signatures", std::to_string(sigs)}},
                         ms / 1e3);
    sig_table.AddRow({std::to_string(sigs), FormatDouble(ms, 1)});
    sig_x.push_back(sigs);
    sig_y.push_back(ms);
  }
  std::cout << sig_table.ToString();
  const PowerFit power = FitPower(sig_x, sig_y);
  bench::Json().Record("fit", {{"axis", "signatures"}, {"form", "power"}}, 0.0,
                       {{"exponent", power.b}, {"r2", power.r2}});
  std::cout << "best power fit: runtime ~ " << FormatDouble(power.a, 3)
            << " * s^" << FormatDouble(power.b, 2)
            << " (R2 = " << FormatDouble(power.r2, 2)
            << "); paper: s^2.53 (R2 = 0.72)\n";

  // (b) runtime vs properties (signatures and subjects fixed).
  std::cout << "\n--- (b) runtime vs #properties (16 signatures, 4,000 "
               "subjects) ---\n";
  TextTable prop_table({"properties", "runtime_ms"});
  std::vector<double> prop_x, prop_y;
  for (int props : {6, 8, 10, 12, 16, 20, 24}) {
    gen::YagoSortSpec spec;
    spec.num_signatures = 16;
    spec.num_properties = props;
    spec.num_subjects = 4000;
    spec.seed = 2000 + props;
    const schema::SignatureIndex index = gen::GenerateYagoSort(spec);
    const double ms = TimeHighestTheta(index);
    bench::Json().Record("highest_theta_k2",
                         {{"axis", "properties"},
                          {"properties", std::to_string(props)}},
                         ms / 1e3);
    prop_table.AddRow({std::to_string(props), FormatDouble(ms, 1)});
    prop_x.push_back(props);
    prop_y.push_back(ms);
  }
  std::cout << prop_table.ToString();
  const ExpFit exp_fit = FitExponential(prop_x, prop_y);
  bench::Json().Record("fit", {{"axis", "properties"}, {"form", "exp"}}, 0.0,
                       {{"exponent", exp_fit.b}, {"r2", exp_fit.r2}});
  std::cout << "best exponential fit: runtime ~ " << FormatDouble(exp_fit.a, 3)
            << " * e^(" << FormatDouble(exp_fit.b, 3)
            << " p) (R2 = " << FormatDouble(exp_fit.r2, 2)
            << "); paper: e^{0.28 p} (R2 = 0.61)\n";

  // (c) runtime vs subjects (structure fixed): expect a flat series.
  std::cout << "\n--- (c) runtime vs #subjects (16 signatures, 12 "
               "properties) ---\n";
  TextTable subj_table({"subjects", "runtime_ms"});
  std::vector<double> subj_x, subj_y;
  for (std::int64_t subjects : {500LL, 2000LL, 8000LL, 32000LL, 128000LL}) {
    gen::YagoSortSpec spec;
    spec.num_signatures = 16;
    spec.num_properties = 12;
    spec.num_subjects = subjects;
    spec.seed = 3000;  // same structure seed: same supports, scaled sizes
    const schema::SignatureIndex index = gen::GenerateYagoSort(spec);
    const double ms = TimeHighestTheta(index);
    bench::Json().Record("highest_theta_k2",
                         {{"axis", "subjects"},
                          {"subjects", std::to_string(subjects)}},
                         ms / 1e3);
    subj_table.AddRow({FormatCount(subjects), FormatDouble(ms, 1)});
    subj_x.push_back(static_cast<double>(subjects));
    subj_y.push_back(ms);
  }
  std::cout << subj_table.ToString();
  const PowerFit subj_fit = FitPower(subj_x, subj_y);
  bench::Json().Record("fit", {{"axis", "subjects"}, {"form", "power"}}, 0.0,
                       {{"exponent", subj_fit.b}, {"r2", subj_fit.r2}});
  std::cout << "power fit exponent vs subjects: " << FormatDouble(subj_fit.b, 2)
            << " (paper: runtime independent of subject count; expect ~0)\n";
  return 0;
}
