// Figure 5: DBpedia Persons, lowest k with threshold theta = 0.9 under
// (a) Cov — paper: k = 9, alive/dead sub-sorts by known-property profile —
// and (b) Sim — paper: k = 4, more lenient toward rare properties so fewer
// sorts suffice.

#include <iostream>

#include "bench_util.h"
#include "gen/persons.h"

namespace rdfsr {
namespace {

void RunCase(const char* label, const char* paper_line,
             const schema::SignatureIndex& index,
             std::unique_ptr<eval::Evaluator> evaluator) {
  std::cout << "\n--- " << label << " ---\npaper: " << paper_line << "\n";
  core::SolverOptions options = bench::BenchSolverOptions();
  options.mip.time_limit_seconds = 6.0;
  options.greedy.restarts = 3;
  options.greedy.max_passes = 12;
  core::RefinementSolver solver(evaluator.get(), options);
  auto result = solver.FindLowestK(Rational(9, 10), /*max_k=*/24);
  if (!result.ok()) {
    std::cout << "measured: " << result.status().ToString() << "\n";
    return;
  }
  bench::Json().Record(
      "lowest_k", {{"case", label}, {"theta", "0.9"}}, result->seconds,
      {{"k", static_cast<double>(result->k)},
       {"instances", static_cast<double>(result->instances)},
       {"proven_minimal", result->proven_minimal ? 1.0 : 0.0}});
  std::cout << "measured: lowest k = " << result->k
            << (result->proven_minimal ? " (proven minimal)"
                                       : " (smaller k not excluded — solver "
                                         "limits, cf. the paper's 8h/instance "
                                         "CPLEX runs)")
            << ", " << result->instances << " instances, "
            << FormatDouble(result->seconds, 1) << "s\n";
  bench::PrintRefinementStats(index, result->refinement);
}

}  // namespace
}  // namespace rdfsr

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::InitHarness(argc, argv, "fig5_dbpedia_lowestk");
  bench::Banner("Figure 5: DBpedia Persons, lowest k for theta = 0.9",
                "Fig 5a (Cov: k = 9, sorts 10,748..260,585 subjects), "
                "Fig 5b (Sim: k = 4, sorts 87,117..292,880 subjects)");
  // Reduced scale keeps the per-instance ILPs inside our homegrown MIP's
  // budget; the signature structure (and hence k) is scale-stable.
  gen::PersonsConfig config;
  config.num_subjects = 2000;
  const schema::SignatureIndex index = gen::GeneratePersons(config);
  std::cout << "dataset: " << FormatCount(index.total_subjects())
            << " subjects, " << index.num_signatures() << " signatures\n";

  RunCase("(a) sigma_Cov, theta = 0.9", "k = 9", index,
          eval::ClosedFormEvaluator::Cov(&index));
  RunCase("(b) sigma_Sim, theta = 0.9", "k = 4", index,
          eval::ClosedFormEvaluator::Sim(&index));
  return 0;
}
