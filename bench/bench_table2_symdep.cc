// Table 2: sigma_SymDep over all unordered property pairs of DBpedia
// Persons, ranked. Headline: (givenName, surName) tops the ranking at 1.0 —
// not any pair involving the universal `name` — and the bottom of the table
// is dominated by deathPlace pairs (~0.11).

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "eval/closed_form.h"
#include "gen/persons.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::InitHarness(argc, argv, "table2_symdep");
  bench::Banner(
      "Table 2: sigma_SymDep ranking on DBpedia Persons",
      "top: (givenName,surName) 1.0, (name,givenName) .95, (name,surName) "
      ".95, (name,birthDate) .53; bottom: (description,givenName) .14, "
      "(deathPlace,name) .11, (deathPlace,givenName) .11, "
      "(deathPlace,surName) .11");

  gen::PersonsConfig config;
  config.num_subjects = 50000;
  const schema::SignatureIndex index = gen::GeneratePersons(config);
  const std::vector<int> all = eval::AllSignatures(index);

  struct Entry {
    std::string p1, p2;
    double value;
  };
  std::vector<Entry> entries;
  WallTimer ranking_timer;
  for (std::size_t i = 0; i < index.num_properties(); ++i) {
    for (std::size_t j = i + 1; j < index.num_properties(); ++j) {
      Entry e;
      e.p1 = index.property_name(i);
      e.p2 = index.property_name(j);
      e.value = eval::SymDepCounts(index, all, e.p1, e.p2).Value();
      entries.push_back(std::move(e));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.value > b.value; });
  bench::Json().Record(
      "symdep_ranking",
      {{"subjects", std::to_string(config.num_subjects)}},
      ranking_timer.Seconds(),
      {{"pairs", static_cast<double>(entries.size())},
       {"top_sigma", entries.front().value},
       {"bottom_sigma", entries.back().value}});

  TextTable table({"rank", "p1", "p2", "sigma_SymDep"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i == 4 && entries.size() > 8) {
      table.AddRow({"...", "...", "...", "..."});
      i = entries.size() - 4;
    }
    table.AddRow({std::to_string(i + 1), entries[i].p1, entries[i].p2,
                  FormatDouble(entries[i].value)});
  }
  std::cout << table.ToString();

  const bool top_is_given_sur =
      (entries[0].p1 == "givenName" && entries[0].p2 == "surName") ||
      (entries[0].p1 == "surName" && entries[0].p2 == "givenName");
  std::cout << "\ntop pair is (givenName, surName): "
            << (top_is_given_sur ? "yes (matches paper)" : "NO") << "\n"
            << "bottom pairs involve deathPlace: "
            << (entries.back().p1 == "deathPlace" ||
                        entries.back().p2 == "deathPlace"
                    ? "yes (matches paper)"
                    : "NO")
            << "\n";
  return 0;
}
