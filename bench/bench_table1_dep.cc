// Table 1: sigma_Dep[p1, p2] on DBpedia Persons for all ordered pairs of
// {deathPlace, birthPlace, deathDate, birthDate}. Headline: the deathPlace
// row is uniformly high (>= 0.77) — knowing a person's death place implies
// most other facts are known — while no other row shares that property.

#include <iostream>

#include "bench_util.h"
#include "eval/closed_form.h"
#include "gen/persons.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::InitHarness(argc, argv, "table1_dep");
  bench::Banner("Table 1: sigma_Dep on DBpedia Persons",
                "deathPlace row: 1.0 / .93 / .82 / .77; birthPlace row: "
                ".26 / 1.0 / .27 / .75; deathDate row: .43 / .50 / 1.0 / "
                ".89; birthDate row: .17 / .57 / .37 / 1.0");

  gen::PersonsConfig config;
  config.num_subjects = 50000;  // large sample for tight conditionals
  const schema::SignatureIndex index = gen::GeneratePersons(config);
  const std::vector<int> all = eval::AllSignatures(index);

  const char* props[] = {"deathPlace", "birthPlace", "deathDate", "birthDate"};
  const double paper[4][4] = {{1.0, .93, .82, .77},
                              {.26, 1.0, .27, .75},
                              {.43, .50, 1.0, .89},
                              {.17, .57, .37, 1.0}};

  TextTable table({"p1 \\ p2", "dPl", "bPl", "dDt", "bDt"});
  for (int i = 0; i < 4; ++i) {
    std::vector<std::string> row = {props[i]};
    for (int j = 0; j < 4; ++j) {
      WallTimer timer;
      const double value =
          eval::DepCounts(index, all, props[i], props[j]).Value();
      bench::Json().Record(
          "dep", {{"p1", props[i]}, {"p2", props[j]}}, timer.Seconds(),
          {{"sigma", value}, {"paper", paper[i][j]}});
      row.push_back(FormatDouble(value) + " (paper " +
                    FormatDouble(paper[i][j]) + ")");
    }
    table.AddRow(row);
  }
  std::cout << table.ToString();
  std::cout << "\nreading: Dep[deathPlace, x] high across the row — the "
               "death place is the hardest fact to acquire; knowing it "
               "implies the rest (Section 7.1.3).\n";
  return 0;
}
