// Micro benchmarks (google-benchmark): evaluator throughput (closed form vs
// generic enumerator), count() kernels, ILP encoding, and LP solves.

#include <benchmark/benchmark.h>

#include "core/ilp_builder.h"
#include "eval/closed_form.h"
#include "eval/counting.h"
#include "eval/enumerator.h"
#include "eval/evaluator.h"
#include "gen/persons.h"
#include "gen/random_graph.h"
#include "ilp/simplex.h"
#include "rules/builtins.h"
#include "util/rng.h"

namespace rdfsr {
namespace {

const schema::SignatureIndex& PersonsIndex() {
  static const schema::SignatureIndex* index =
      new schema::SignatureIndex(gen::GeneratePersons());
  return *index;
}

void BM_CovClosedForm(benchmark::State& state) {
  const auto& index = PersonsIndex();
  const std::vector<int> all = eval::AllSignatures(index);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::CovCounts(index, all));
  }
}
BENCHMARK(BM_CovClosedForm);

void BM_SimClosedForm(benchmark::State& state) {
  const auto& index = PersonsIndex();
  const std::vector<int> all = eval::AllSignatures(index);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::SimCounts(index, all));
  }
}
BENCHMARK(BM_SimClosedForm);

void BM_CovGenericEnumerator(benchmark::State& state) {
  const auto& index = PersonsIndex();
  const rules::Rule rule = rules::CovRule();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::EvaluateRuleOnIndex(rule, index));
  }
}
BENCHMARK(BM_CovGenericEnumerator);

void BM_SimGenericEnumerator(benchmark::State& state) {
  const auto& index = PersonsIndex();
  const rules::Rule rule = rules::SimRule();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::EvaluateRuleOnIndex(rule, index));
  }
}
BENCHMARK(BM_SimGenericEnumerator);

void BM_CountCompatible(benchmark::State& state) {
  const auto& index = PersonsIndex();
  const rules::Rule rule = rules::SimRule();
  eval::RoughAssignment tau;
  tau.cells = {{0, 3}, {1, 3}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::CountRuleCases(
        rule.antecedent(), rule.consequent(), rule.variables(), tau, index));
  }
}
BENCHMARK(BM_CountCompatible);

void BM_EnumerateTaus(benchmark::State& state) {
  const auto& index = PersonsIndex();
  const rules::Rule rule = rules::CovRule();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::EnumerateTauCounts(rule, index));
  }
}
BENCHMARK(BM_EnumerateTaus);

void BM_BuildIlp(benchmark::State& state) {
  const auto& index = PersonsIndex();
  const rules::Rule rule = rules::CovRule();
  const auto taus = eval::EnumerateTauCounts(rule, index);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildRefinementIlp(
        index, rule, taus, static_cast<int>(state.range(0)), Rational(9, 10),
        {}));
  }
}
BENCHMARK(BM_BuildIlp)->Arg(2)->Arg(4);

void BM_SimplexAssignment(benchmark::State& state) {
  // n x n assignment LP.
  const int n = static_cast<int>(state.range(0));
  ilp::Model m;
  std::vector<std::vector<int>> var(n, std::vector<int>(n));
  Rng rng(7);
  std::vector<ilp::LinTerm> obj;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      var[i][j] = m.AddVariable("x", 0, 1, false);
      obj.push_back({var[i][j], static_cast<double>(rng.Below(100))});
    }
  }
  for (int i = 0; i < n; ++i) {
    std::vector<ilp::LinTerm> row, col;
    for (int j = 0; j < n; ++j) {
      row.push_back({var[i][j], 1.0});
      col.push_back({var[j][i], 1.0});
    }
    m.AddConstraint("r", std::move(row), 1, 1);
    m.AddConstraint("c", std::move(col), 1, 1);
  }
  m.SetObjective(obj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::SolveLp(m));
  }
}
BENCHMARK(BM_SimplexAssignment)->Arg(8)->Arg(16)->Arg(32);

void BM_RestrictIndex(benchmark::State& state) {
  const auto& index = PersonsIndex();
  std::vector<int> half;
  for (std::size_t i = 0; i < index.num_signatures(); i += 2) {
    half.push_back(static_cast<int>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Restrict(half));
  }
}
BENCHMARK(BM_RestrictIndex);

}  // namespace
}  // namespace rdfsr
