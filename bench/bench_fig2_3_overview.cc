// Figures 2 and 3: dataset overviews of DBpedia Persons and WordNet Nouns —
// subjects, properties, signature counts, sigma_Cov/sigma_Sim, and the
// signature-view rendering the paper draws as a black/white bitmap.

#include <iostream>

#include "bench_util.h"
#include "eval/closed_form.h"
#include "gen/persons.h"
#include "gen/wordnet.h"
#include "schema/ascii_view.h"

namespace rdfsr {
namespace {

void Overview(const std::string& name, const schema::SignatureIndex& index,
              const std::string& paper_line) {
  std::cout << "\n--- " << name << " ---\n";
  std::cout << "paper:    " << paper_line << "\n";
  const std::vector<int> all = eval::AllSignatures(index);
  std::cout << "measured: " << FormatCount(index.total_subjects())
            << " subjects, " << index.num_properties() << " properties, "
            << index.num_signatures() << " signatures, sigma_Cov = "
            << FormatDouble(eval::CovCounts(index, all).Value())
            << ", sigma_Sim = "
            << FormatDouble(eval::SimCounts(index, all).Value()) << "\n\n";
  schema::AsciiViewOptions options;
  options.max_rows = 16;
  options.show_property_header = false;
  std::cout << schema::RenderSignatureView(index, options);
}

}  // namespace
}  // namespace rdfsr

int main() {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::Banner("Figures 2 and 3: dataset overviews",
                "DBpedia Persons: 790,703 subj / 8 props / 64 sigs / "
                "Cov 0.54 / Sim 0.77; WordNet Nouns: 79,689 subj / 12 props "
                "/ 53 sigs / Cov 0.44 / Sim 0.93");

  Overview("DBpedia Persons (synthetic twin, 1/100 scale)",
           gen::GeneratePersons(),
           "790,703 subjects, 8 properties, 64 signatures, Cov 0.54, "
           "Sim 0.77");
  Overview("WordNet Nouns (synthetic twin, 1/10 scale)", gen::GenerateWordnet(),
           "79,689 subjects, 12 properties, 53 signatures, Cov 0.44, "
           "Sim 0.93");
  return 0;
}
