// Figures 2 and 3: dataset overviews of DBpedia Persons and WordNet Nouns —
// subjects, properties, signature counts, sigma_Cov/sigma_Sim, and the
// signature-view rendering the paper draws as a black/white bitmap.

#include <iostream>

#include "bench_util.h"
#include "eval/closed_form.h"
#include "gen/persons.h"
#include "gen/wordnet.h"
#include "schema/ascii_view.h"
#include "util/timer.h"

namespace rdfsr {
namespace {

void Overview(const std::string& name, const schema::SignatureIndex& index,
              const std::string& paper_line) {
  std::cout << "\n--- " << name << " ---\n";
  std::cout << "paper:    " << paper_line << "\n";
  const std::vector<int> all = eval::AllSignatures(index);
  WallTimer timer;
  const double sigma_cov = eval::CovCounts(index, all).Value();
  const double sigma_sim = eval::SimCounts(index, all).Value();
  bench::Json().Record(
      "overview", {{"dataset", name}}, timer.Seconds(),
      {{"subjects", static_cast<double>(index.total_subjects())},
       {"properties", static_cast<double>(index.num_properties())},
       {"signatures", static_cast<double>(index.num_signatures())},
       {"sigma_cov", sigma_cov},
       {"sigma_sim", sigma_sim}});
  std::cout << "measured: " << FormatCount(index.total_subjects())
            << " subjects, " << index.num_properties() << " properties, "
            << index.num_signatures() << " signatures, sigma_Cov = "
            << FormatDouble(sigma_cov) << ", sigma_Sim = "
            << FormatDouble(sigma_sim) << "\n\n";
  schema::AsciiViewOptions options;
  options.max_rows = 16;
  options.show_property_header = false;
  std::cout << schema::RenderSignatureView(index, options);
}

}  // namespace
}  // namespace rdfsr

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::InitHarness(argc, argv, "fig2_3_overview");
  bench::Banner("Figures 2 and 3: dataset overviews",
                "DBpedia Persons: 790,703 subj / 8 props / 64 sigs / "
                "Cov 0.54 / Sim 0.77; WordNet Nouns: 79,689 subj / 12 props "
                "/ 53 sigs / Cov 0.44 / Sim 0.93");

  Overview("DBpedia Persons (synthetic twin, 1/100 scale)",
           gen::GeneratePersons(),
           "790,703 subjects, 8 properties, 64 signatures, Cov 0.54, "
           "Sim 0.77");
  Overview("WordNet Nouns (synthetic twin, 1/10 scale)", gen::GenerateWordnet(),
           "79,689 subjects, 12 properties, 53 signatures, Cov 0.44, "
           "Sim 0.93");
  return 0;
}
