// Ablations over the encoding decisions documented in DESIGN.md: symmetry
// breaking (precedence vs the paper's hash constraints vs none), continuous
// vs binary auxiliary variables, sign-directed vs paper-literal linking, and
// greedy-first vs pure MIP. Each variant answers the same decision instances;
// we report encoding sizes, node counts, and wall time.

#include <iostream>

#include "bench_util.h"
#include "core/ilp_builder.h"
#include "eval/enumerator.h"
#include "gen/persons.h"
#include "ilp/branch_and_bound.h"
#include "util/timer.h"

namespace rdfsr {
namespace {

struct Variant {
  const char* name;
  core::IlpBuildOptions build;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  variants.push_back({"default (precedence, cont-aux, sign-link, subst)", {}});
  {
    Variant v{"paper hash symmetry", {}};
    v.build.symmetry = core::IlpBuildOptions::SymmetryBreaking::kHash;
    variants.push_back(v);
  }
  {
    Variant v{"no symmetry breaking", {}};
    v.build.symmetry = core::IlpBuildOptions::SymmetryBreaking::kNone;
    variants.push_back(v);
  }
  {
    Variant v{"binary aux (U,T integer)", {}};
    v.build.continuous_aux = false;
    variants.push_back(v);
  }
  {
    Variant v{"paper-literal linking", {}};
    v.build.sign_directed_linking = false;
    v.build.substitute_singleton_taus = false;
    variants.push_back(v);
  }
  return variants;
}

}  // namespace
}  // namespace rdfsr

int main(int argc, char** argv) {
  using namespace rdfsr;  // NOLINT(build/namespaces)
  bench::InitHarness(argc, argv, "ablation");
  bench::Banner("Ablation: encoding variants on a DBpedia-Persons instance",
                "DESIGN.md optimizations; all variants must agree on the "
                "decision");

  gen::PersonsConfig config;
  config.num_subjects = 600;  // small instance so every variant terminates
  const schema::SignatureIndex index = gen::GeneratePersons(config);
  auto cov = eval::ClosedFormEvaluator::Cov(&index);
  const auto taus = eval::EnumerateTauCounts(cov->rule(), index);
  std::cout << "dataset: " << index.num_signatures() << " signatures, "
            << taus.size() << " non-zero taus\n";

  // A feasible and a (likely) infeasible threshold around the optimum.
  const double sigma = cov->SigmaAll();
  const Rational feasible = Rational::FromDouble(sigma + 0.05);
  const Rational hard = Rational::FromDouble(0.99);

  for (const Rational& theta : {feasible, hard}) {
    std::cout << "\n--- k = 2, theta = " << theta.ToString() << " ---\n";
    TextTable table({"variant", "rows", "cols", "decision", "nodes", "ms"});
    for (const auto& variant : Variants()) {
      WallTimer timer;
      core::IlpEncoding enc = core::BuildRefinementIlp(
          index, cov->rule(), taus, 2, theta, variant.build);
      ilp::MipOptions mip;
      mip.time_limit_seconds = 20.0;
      const ilp::MipResult result = ilp::SolveMip(enc.model, mip);
      bench::Json().Record(
          "mip_variant",
          {{"variant", variant.name}, {"theta", theta.ToString()}},
          timer.Seconds(),
          {{"rows", static_cast<double>(enc.model.num_constraints())},
           {"cols", static_cast<double>(enc.model.num_variables())},
           {"nodes", static_cast<double>(result.nodes)}});
      table.AddRow({variant.name, std::to_string(enc.model.num_constraints()),
                    std::to_string(enc.model.num_variables()),
                    ilp::MipStatusName(result.status),
                    std::to_string(result.nodes),
                    FormatDouble(timer.Millis(), 0)});
    }
    std::cout << table.ToString();
  }

  // Greedy-first vs pure MIP on the full sequential theta search.
  std::cout << "\n--- greedy-first vs pure MIP (highest-theta, k = 2) ---\n";
  TextTable table({"mode", "theta found", "seconds"});
  for (bool greedy_first : {true, false}) {
    core::SolverOptions options = bench::BenchSolverOptions();
    options.greedy_first = greedy_first;
    core::RefinementSolver solver(cov.get(), options);
    WallTimer timer;
    const core::HighestThetaResult best = solver.FindHighestTheta(2);
    bench::Json().Record(
        "highest_theta",
        {{"mode", greedy_first ? "greedy-first" : "pure-mip"}, {"k", "2"}},
        timer.Seconds(), {{"theta", best.theta.ToDouble()}});
    table.AddRow({greedy_first ? "greedy-first" : "pure MIP",
                  FormatDouble(best.theta.ToDouble()),
                  FormatDouble(timer.Seconds(), 2)});
  }
  std::cout << table.ToString();

  // Sequential (paper) vs bisection theta search. The paper prefers the
  // sequential scan: "it has proven to be much slower to find an instance
  // infeasible than to find a solution to a feasible instance", and
  // bisection probes more infeasible instances.
  std::cout << "\n--- sequential (paper) vs bisection theta search ---\n";
  TextTable search_table({"strategy", "theta found", "instances", "seconds"});
  for (bool binary : {false, true}) {
    core::SolverOptions options = bench::BenchSolverOptions();
    options.binary_theta_search = binary;
    core::RefinementSolver solver(cov.get(), options);
    WallTimer timer;
    const core::HighestThetaResult best = solver.FindHighestTheta(2);
    bench::Json().Record(
        "theta_search",
        {{"strategy", binary ? "bisection" : "sequential"}, {"k", "2"}},
        timer.Seconds(),
        {{"theta", best.theta.ToDouble()},
         {"instances", static_cast<double>(best.instances)}});
    search_table.AddRow({binary ? "bisection" : "sequential (paper)",
                         FormatDouble(best.theta.ToDouble()),
                         std::to_string(best.instances),
                         FormatDouble(timer.Seconds(), 2)});
  }
  std::cout << search_table.ToString();
  return 0;
}
