// bench_refine — refinement-search throughput: incremental SortStats engines
// vs the seed's scratch-evaluation heuristics.
//
// The paper spends its experiments (Sections 6-7) deciding Exists(k, theta)
// over signature indices; after PR 3 made ingestion stream, the hot path is
// the heuristic ladder in core/greedy.cc. This harness measures both layers
// at n = 256 / 1k / 4k signatures on two index shapes:
//
//   clustered   8 property families + 2 shared columns; most within-family
//               merges stay above theta, so agglomerative lowest-k runs
//               ~n - 8 merge rounds — the deep-merge regime where scratch
//               evaluation re-walks ever-growing sorts
//   random      gen::GenerateRandomIndex; almost no merge passes theta, so
//               the cost is the O(n^2) first-round scan
//
// and two implementations per heuristic:
//
//   incremental core/greedy.cc: per-part/per-slot SortStats, closed-form
//               extraction, lazy best-pair heap. Merge round
//               O(n log n + n * |P|/64); greedy trial O(|supp| + k log k).
//   scratch     the seed implementation mirrored verbatim below: every
//               candidate evaluation re-derives SubsetStats from the member
//               signatures. Merge round O(n^2 * |sort| * |P|); greedy trial
//               O(k * |sort| * |P|).
//
// Outputs must match exactly and the binary exits non-zero on any divergence
// (CI runs the small size as a smoke tier, no perf gating). The incremental
// sigmas come from the same exact integer counts as scratch evaluation; the
// one intended difference is the merge tie-break — exact CompareSigma instead
// of the seed's `sigma > best + 1e-15` double slack — so the outputs agree
// whenever no two candidate sigmas are distinct rationals within 1e-15 of
// each other, which holds at these shapes and sizes (cross-products of totals
// stay far below the ~1e15 where double slack could mask a real difference).
// The scratch agglomerative
// baseline is O(n^3) and takes ~a minute at n = 1k; sizes above
// --scratch-max (default 1000) skip it and record the incremental side only
// (so --signatures 4000 is cheap).
//
// `--threads N` runs the incremental agglomerative side on N worker threads
// (0 = one per hardware thread). For sizes up to --parallel-check-max the
// harness re-runs the search serially and on >= 2 threads and asserts all
// three refinements are bit-identical (exit non-zero otherwise); every
// record carries the thread count and the process peak RSS, so large runs
// (--signatures 100000) document the sparse-SortStats memory footprint.
//
// Usage: bench_refine [--json <path>] [--signatures N[,N...]]
//                     [--scratch-max N] [--threads N]
//                     [--parallel-check-max N]    (default sizes 256, 1000)

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <iostream>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "eval/evaluator.h"
#include "gen/random_graph.h"
#include "rules/builtins.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rdfsr::bench {
namespace {

// --- The seed's heuristics, mirrored verbatim (commit c2222b7) so the
// --- speedup is measured against what this repo actually did before the
// --- incremental-stats rewrite: per-candidate scratch Counts() walks.
namespace scratch {

std::vector<double> Score(const eval::Evaluator& evaluator,
                          const std::vector<std::vector<int>>& slots) {
  std::vector<double> sigmas;
  for (const std::vector<int>& slot : slots) {
    if (!slot.empty()) sigmas.push_back(evaluator.Sigma(slot));
  }
  std::sort(sigmas.begin(), sigmas.end());
  return sigmas;
}

core::SortRefinement ToRefinement(const std::vector<std::vector<int>>& slots) {
  core::SortRefinement refinement;
  for (const std::vector<int>& slot : slots) {
    if (!slot.empty()) refinement.sorts.push_back(slot);
  }
  return refinement;
}

core::SortRefinement GreedyMaxMinSigma(const eval::Evaluator& evaluator, int k,
                                       const core::GreedyOptions& options) {
  const schema::SignatureIndex& index = evaluator.index();
  const int n = static_cast<int>(index.num_signatures());
  Rng rng(options.seed);
  std::vector<std::vector<int>> best_slots;
  std::vector<double> best_score;
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;

  for (int restart = 0; restart < options.restarts; ++restart) {
    std::vector<int> shuffled = order;
    if (restart > 0) {
      for (int i = n - 1; i > 0; --i) {
        std::swap(shuffled[i], shuffled[rng.Below(i + 1)]);
      }
    }
    std::vector<std::vector<int>> slots(k);
    std::vector<schema::PropertySet> slot_support(
        k, schema::PropertySet(index.num_properties()));
    for (int sig : shuffled) {
      const schema::PropertySet& sig_props = index.signature(sig).props();
      std::vector<int> slot_order(k);
      std::iota(slot_order.begin(), slot_order.end(), 0);
      std::vector<std::size_t> overlap(k);
      for (int s = 0; s < k; ++s) {
        overlap[s] = slot_support[s].IntersectCount(sig_props);
      }
      std::stable_sort(slot_order.begin(), slot_order.end(),
                       [&](int a, int b) { return overlap[a] > overlap[b]; });
      int best_slot = -1;
      std::vector<double> best_local;
      bool tried_empty = false;
      for (int s : slot_order) {
        if (slots[s].empty()) {
          if (tried_empty) continue;
          tried_empty = true;
        }
        slots[s].push_back(sig);
        std::vector<double> sc = Score(evaluator, slots);
        slots[s].pop_back();
        if (best_slot < 0 || sc > best_local) {
          best_local = std::move(sc);
          best_slot = s;
        }
      }
      slots[best_slot].push_back(sig);
      slot_support[best_slot].UnionWith(sig_props);
    }

    for (int pass = 0; pass < options.max_passes; ++pass) {
      bool improved = false;
      std::vector<double> current = Score(evaluator, slots);
      for (int s = 0; s < k; ++s) {
        for (std::size_t pos = 0; pos < slots[s].size(); ++pos) {
          const int sig = slots[s][pos];
          bool tried_empty = false;
          for (int d = 0; d < k; ++d) {
            if (d == s) continue;
            if (slots[d].empty()) {
              if (tried_empty) continue;
              tried_empty = true;
            }
            slots[s].erase(slots[s].begin() + pos);
            slots[d].push_back(sig);
            std::vector<double> sc = Score(evaluator, slots);
            if (sc > current) {
              current = std::move(sc);
              improved = true;
              break;
            }
            slots[d].pop_back();
            slots[s].insert(slots[s].begin() + pos, sig);
          }
          if (improved) break;
        }
        if (improved) break;
      }
      if (!improved) break;
    }

    std::vector<double> sc = Score(evaluator, slots);
    if (best_slots.empty() || sc > best_score) {
      best_score = std::move(sc);
      best_slots = slots;
    }
  }
  return ToRefinement(best_slots);
}

core::SortRefinement Agglomerate(
    const eval::Evaluator& evaluator, std::size_t min_sorts,
    const std::function<bool(const eval::SigmaCounts&)>& may_merge) {
  const int n = static_cast<int>(evaluator.index().num_signatures());
  std::vector<std::vector<int>> parts(n);
  for (int i = 0; i < n; ++i) parts[i] = {i};

  auto merged_counts = [&](int a, int b) {
    std::vector<int> merged = parts[a];
    merged.insert(merged.end(), parts[b].begin(), parts[b].end());
    return evaluator.Counts(merged);
  };

  while (parts.size() > std::max<std::size_t>(min_sorts, 1)) {
    int best_a = -1, best_b = -1;
    double best_sigma = -1.0;
    bool best_allowed = false;
    for (std::size_t a = 0; a < parts.size(); ++a) {
      for (std::size_t b = a + 1; b < parts.size(); ++b) {
        const eval::SigmaCounts counts =
            merged_counts(static_cast<int>(a), static_cast<int>(b));
        const bool allowed = may_merge(counts);
        const double sigma = counts.Value();
        if ((allowed && !best_allowed) ||
            (allowed == best_allowed && sigma > best_sigma + 1e-15)) {
          best_a = static_cast<int>(a);
          best_b = static_cast<int>(b);
          best_sigma = sigma;
          best_allowed = allowed;
        }
      }
    }
    if (best_a < 0) break;
    if (!best_allowed) break;
    parts[best_a].insert(parts[best_a].end(), parts[best_b].begin(),
                         parts[best_b].end());
    parts.erase(parts.begin() + best_b);
  }

  core::SortRefinement refinement;
  for (auto& part : parts) {
    std::sort(part.begin(), part.end());
    refinement.sorts.push_back(std::move(part));
  }
  return refinement;
}

core::SortRefinement AgglomerativeLowestK(const eval::Evaluator& evaluator,
                                          Rational theta) {
  return Agglomerate(evaluator, 1, [&](const eval::SigmaCounts& counts) {
    return core::SigmaAtLeast(counts, theta);
  });
}

}  // namespace scratch

/// Clustered index: `families` property blocks of `block` columns plus two
/// shared columns; signatures draw ~85% of their family block. Distinct
/// supports, counts uniform in [1, 50].
schema::SignatureIndex MakeClusteredIndex(int n, std::uint64_t seed) {
  constexpr int kFamilies = 8;
  constexpr int kShared = 2;
  // At the 0.85 draw density each block column contributes only ~0.6 bits
  // of support entropy, so a family's draws concentrate on ~2^(0.6*kBlock)
  // typical sets. 12 columns cover the default sizes (<= 4k signatures);
  // widen the blocks for larger n so the distinct-support draw cannot
  // stall (kept at 12 below 4k so the small shapes stay bit-identical).
  int kBlock = 12;
  while (n > 4096 &&
         0.6 * kBlock < std::log2(16.0 * static_cast<double>(n) / kFamilies)) {
    ++kBlock;
  }
  const int num_props = kShared + kFamilies * kBlock;
  Rng rng(seed);
  std::set<std::vector<int>> seen;
  std::vector<schema::Signature> sigs;
  int stall = 0;
  while (static_cast<int>(sigs.size()) < n) {
    const int family = static_cast<int>(sigs.size()) % kFamilies;
    std::vector<int> support;
    for (int p = 0; p < kShared; ++p) support.push_back(p);
    const int base = kShared + family * kBlock;
    for (int p = 0; p < kBlock; ++p) {
      if (rng.Chance(0.85)) support.push_back(base + p);
    }
    if (!seen.insert(support).second) {
      RDFSR_CHECK_LT(++stall, 1000000) << "cannot draw distinct supports";
      continue;
    }
    sigs.emplace_back(std::move(support), rng.Range(1, 50));
  }
  std::vector<std::string> names;
  for (int p = 0; p < num_props; ++p) {
    names.push_back("http://bench/p" + std::to_string(p));
  }
  return schema::SignatureIndex::FromSignatures(std::move(names),
                                                std::move(sigs));
}

schema::SignatureIndex MakeRandomIndex(int n, std::uint64_t seed) {
  gen::RandomIndexSpec spec;
  spec.num_signatures = n;
  spec.num_properties = 64;
  spec.density = 0.3;
  spec.seed = seed;
  return gen::GenerateRandomIndex(spec);
}

bool SameRefinement(const core::SortRefinement& a,
                    const core::SortRefinement& b) {
  return a.sorts == b.sorts;
}

struct Measurement {
  double incr_seconds = 0;
  double scratch_seconds = 0;  // 0 = skipped
  std::size_t sorts = 0;
  bool match = true;
  bool scratch_ran = false;
  int threads = 1;             // worker threads of the timed incremental run
  std::size_t peak_rss = 0;    // process high-water RSS after the run
  bool parallel_checked = false;
  bool parallel_match = true;  // serial == parallel refinement
};

void Report(TextTable* table, bool* ok, const std::string& config,
            const std::string& algo, const std::string& rule, int n,
            const Measurement& m) {
  const auto fmt = [](double seconds) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(3) << seconds;
    return out.str();
  };
  std::ostringstream speedup;
  if (m.scratch_ran) {
    speedup << std::fixed << std::setprecision(1)
            << m.scratch_seconds / m.incr_seconds << "x";
  } else {
    speedup << "-";
  }
  table->AddRow({config, algo, rule, std::to_string(n), fmt(m.incr_seconds),
                 m.scratch_ran ? fmt(m.scratch_seconds) : "-", speedup.str(),
                 std::to_string(m.sorts),
                 m.scratch_ran ? (m.match ? "yes" : "MISMATCH") : "-"});
  if (!m.match) {
    std::cerr << "FAIL: incremental and scratch refinements differ for "
              << config << "/" << algo << "/" << rule << " at n = " << n
              << "\n";
    *ok = false;
  }
  if (!m.parallel_match) {
    std::cerr << "FAIL: parallel and serial agglomerative refinements differ "
              << "for " << config << "/" << algo << "/" << rule << " at n = "
              << n << "\n";
    *ok = false;
  }
  std::vector<std::pair<std::string, double>> metrics = {
      {"signatures", static_cast<double>(n)},
      {"sorts", static_cast<double>(m.sorts)},
      {"threads", static_cast<double>(m.threads)},
      {"peak_rss_bytes", static_cast<double>(m.peak_rss)},
  };
  if (m.parallel_checked) {
    // Emitted only when the serial-vs-parallel comparison ran, so a CI
    // assertion on it never passes vacuously.
    metrics.emplace_back("parallel_match", m.parallel_match ? 1.0 : 0.0);
  }
  if (m.scratch_ran) {
    // Emitted only when the scratch comparison actually ran, so a CI
    // assertion on `match` never passes vacuously for skipped configs.
    metrics.emplace_back("match", m.match ? 1.0 : 0.0);
    metrics.emplace_back("scratch_seconds", m.scratch_seconds);
    metrics.emplace_back("speedup_vs_scratch",
                         m.scratch_seconds / m.incr_seconds);
  }
  Json().Record(
      "refine/" + config + "/" + algo + "/" + rule,
      {{"config", config}, {"algo", algo}, {"rule", rule},
       {"signatures", std::to_string(n)}},
      m.incr_seconds, metrics);
}

int Run(const std::vector<int>& sizes, int scratch_max, int threads,
        int parallel_check_max) {
  Banner("Refinement heuristics: incremental SortStats vs scratch evaluation",
         "Sections 6-7 Exists(k, theta) search; Figure 8 runtime shape");

  TextTable table({"config", "algo", "rule", "n", "incr_s", "scratch_s",
                   "speedup", "sorts", "identical"});
  bool ok = true;
  const Rational theta(3, 4);
  const Rational theta_random(9, 10);
  core::GreedyOptions greedy_options;
  greedy_options.restarts = 2;
  greedy_options.max_passes = 3;
  constexpr int kGreedySlots = 8;

  for (int n : sizes) {
    const bool run_scratch = n <= scratch_max;

    // Clustered shape: deep-merge agglomerative regime, cov and sim.
    const schema::SignatureIndex clustered = MakeClusteredIndex(n, 42);
    for (const auto& rule : {rules::CovRule(), rules::SimRule()}) {
      auto evaluator = eval::MakeEvaluator(rule, &clustered);
      Measurement m;
      WallTimer timer;
      const core::SortRefinement incr =
          core::AgglomerativeLowestK(*evaluator, theta, threads);
      m.incr_seconds = timer.Seconds();
      m.sorts = incr.num_sorts();
      m.threads = threads;
      m.peak_rss = PeakRssBytes();
      if (n <= parallel_check_max) {
        const core::SortRefinement serial =
            core::AgglomerativeLowestK(*evaluator, theta, 1);
        const core::SortRefinement parallel =
            threads > 1 ? incr
                        : core::AgglomerativeLowestK(*evaluator, theta, 2);
        m.parallel_checked = true;
        m.parallel_match =
            SameRefinement(serial, parallel) && SameRefinement(serial, incr);
      }
      if (run_scratch) {
        WallTimer scratch_timer;
        const core::SortRefinement base =
            scratch::AgglomerativeLowestK(*evaluator, theta);
        m.scratch_seconds = scratch_timer.Seconds();
        m.scratch_ran = true;
        m.match = SameRefinement(incr, base);
      }
      Report(&table, &ok, "clustered", "agglo", rule.name(), n, m);
    }

    // Random shape: the first-round O(n^2) scan dominates.
    const schema::SignatureIndex random_index = MakeRandomIndex(n, 7);
    {
      auto evaluator = eval::MakeEvaluator(rules::CovRule(), &random_index);
      Measurement m;
      WallTimer timer;
      const core::SortRefinement incr =
          core::AgglomerativeLowestK(*evaluator, theta_random, threads);
      m.incr_seconds = timer.Seconds();
      m.sorts = incr.num_sorts();
      m.threads = threads;
      m.peak_rss = PeakRssBytes();
      if (n <= parallel_check_max) {
        const core::SortRefinement serial =
            core::AgglomerativeLowestK(*evaluator, theta_random, 1);
        const core::SortRefinement parallel =
            threads > 1
                ? incr
                : core::AgglomerativeLowestK(*evaluator, theta_random, 2);
        m.parallel_checked = true;
        m.parallel_match =
            SameRefinement(serial, parallel) && SameRefinement(serial, incr);
      }
      if (run_scratch) {
        WallTimer scratch_timer;
        const core::SortRefinement base =
            scratch::AgglomerativeLowestK(*evaluator, theta_random);
        m.scratch_seconds = scratch_timer.Seconds();
        m.scratch_ran = true;
        m.match = SameRefinement(incr, base);
      }
      Report(&table, &ok, "random", "agglo", "Cov", n, m);
    }

    // Greedy + local search on the clustered shape.
    {
      auto evaluator = eval::MakeEvaluator(rules::CovRule(), &clustered);
      Measurement m;
      WallTimer timer;
      const core::SortRefinement incr =
          core::GreedyMaxMinSigma(*evaluator, kGreedySlots, greedy_options);
      m.incr_seconds = timer.Seconds();
      m.sorts = incr.num_sorts();
      m.peak_rss = PeakRssBytes();
      if (run_scratch) {
        WallTimer scratch_timer;
        const core::SortRefinement base = scratch::GreedyMaxMinSigma(
            *evaluator, kGreedySlots, greedy_options);
        m.scratch_seconds = scratch_timer.Seconds();
        m.scratch_ran = true;
        m.match = SameRefinement(incr, base);
      }
      Report(&table, &ok, "clustered", "greedy", "Cov", n, m);
    }
  }

  std::cout << table.ToString();
  std::cout << "\nincr = incremental SortStats engines (core/greedy.cc); "
               "scratch = the seed's\n  per-candidate re-evaluation, mirrored "
               "verbatim. identical = refinements agree\n  exactly (the "
               "bit-identical contract; '-' when scratch skipped via "
               "--scratch-max).\n";
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace rdfsr::bench

int main(int argc, char** argv) {
  std::vector<int> sizes;
  int scratch_max = 1000;
  int threads = 1;
  int parallel_check_max = 4000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      rdfsr::bench::Json().Open(argv[++i], "bench_refine");
    } else if (std::strcmp(argv[i], "--signatures") == 0 && i + 1 < argc) {
      std::stringstream list(argv[++i]);
      std::string item;
      while (std::getline(list, item, ',')) sizes.push_back(std::stoi(item));
    } else if (std::strcmp(argv[i], "--scratch-max") == 0 && i + 1 < argc) {
      scratch_max = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--parallel-check-max") == 0 &&
               i + 1 < argc) {
      parallel_check_max = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--json <path>] [--signatures N[,N...]]"
                   " [--scratch-max N] [--threads N]"
                   " [--parallel-check-max N]\n";
      return 2;
    }
  }
  if (sizes.empty()) sizes = {256, 1000};
  return rdfsr::bench::Run(sizes, scratch_max, threads, parallel_check_max);
}
